(* Per-threadblock event traces extracted from kernel IR.

   The timing simulator does not interpret data; it replays the sequence of
   loads, computes and synchronization points one threadblock executes.
   Because every threadblock runs the same program, the extractor walks the
   program of one representative threadblock (grid loop variables pinned to
   zero) and aggregates warp-parallel loops (the warps of a threadblock
   march in lockstep through the homogeneous GEMM body, so their per-event
   bytes/FLOPs are summed).

   Synchronization of scope-synchronized (shared-memory) pipelines comes
   directly from the IR's producer/consumer primitives. Register-level
   pipelines have no explicit primitives — the hardware scoreboard stalls
   the consumer instead — so the extractor synthesizes the equivalent
   commit/wait structure: loads issued in one iteration of the pipeline
   loop form a batch, and a compute event waits until all batches except
   the youngest [stages-1] have completed.

   Representation: the boxed [event] type is the public/debug view only.
   The extractor produces a packed [program] — a struct-of-arrays encoding
   (parallel int columns for opcode, argument, interned group index, flags
   and batch ordinal) built in two phases:

   1. the kernel body is *resolved* once into a closure tree with loop
      variables assigned integer slots, expressions compiled against an
      [int array] environment and byte/FLOP counts folded to constants
      (region lengths are static ints, so only loop bounds and branch
      conditions need evaluation);
   2. the resolved tree is executed, appending directly into reusable
      domain-local scratch columns — no per-event boxing, no string
      hashing in the loop.

   Batch ordinals are program-static (every threadblock runs the same
   program), so the push helpers compute, online, the pipeline batch each
   event opens/commits/consumes plus each group's maximum number of
   in-flight batches ([finalize] applies the identical recurrence as a
   separate pass for [pack]-built traces) — which is what lets the
   simulator replace its batch queues with fixed-size rings. The emitted
   columns are malloc-backed Bigarrays: exact-size major-heap int arrays
   cost more in GC pacing than the whole walk (see [icol]). *)

open Alcop_ir

type level =
  | From_global
  | From_shared

type event =
  | Load of { level : level; bytes : int; async : bool; group : string option }
  | Store of { bytes : int }
  | Commit of { group : string; sync : bool }
  | Wait_oldest of { group : string; sync : bool }
  | Acquire of { group : string; stages : int }
  | Release of string
  | Barrier
  | Compute of { flops : int }

let pp_event fmt = function
  | Load { level; bytes; async; group } ->
    Format.fprintf fmt "load[%s] %dB%s%s"
      (match level with From_global -> "global" | From_shared -> "shared")
      bytes
      (if async then " async" else "")
      (match group with None -> "" | Some g -> " @" ^ g)
  | Store { bytes } -> Format.fprintf fmt "store %dB" bytes
  | Commit { group = g; sync } ->
    Format.fprintf fmt "commit @%s%s" g (if sync then "" else " soft")
  | Wait_oldest { group = g; sync } ->
    Format.fprintf fmt "wait @%s%s" g (if sync then "" else " soft")
  | Acquire { group; stages } -> Format.fprintf fmt "acquire @%s (%d)" group stages
  | Release g -> Format.fprintf fmt "release @%s" g
  | Barrier -> Format.fprintf fmt "barrier"
  | Compute { flops } -> Format.fprintf fmt "compute %d flops" flops

(* --- packed programs --- *)

let op_load = 0
let op_store = 1
let op_commit = 2
let op_wait = 3
let op_acquire = 4
let op_release = 5
let op_barrier = 6
let op_compute = 7

let flag_async = 1
let flag_shared = 2

(* Set on the commit/wait/acquire/release events of scope-synchronized
   pipeline groups; scoreboard-synthesized ("soft") register-pipeline
   commits and waits carry a clear bit. The simulator never reads it — it
   exists so decoded views and the pipeline observatory can tell the two
   protocols apart without re-running the analysis. *)
let flag_sync_group = 4

(* Program columns live in int Bigarrays: their storage is malloc'd
   outside the OCaml heap, so emitting a ~1k-event program costs five
   mallocs and a memcpy instead of five major-heap allocations whose GC
   pacing debt dominated extraction (measured ~16 us/call at 1037
   events). *)
type icol = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let icol_create n : icol = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let icol_of_array (a : int array) : icol =
  let b = icol_create (Array.length a) in
  Array.iteri (fun i v -> b.{i} <- v) a;
  b

type program = {
  n : int;
  opcode : icol;
  arg : icol;
  group : icol;
  flags : icol;
  batch : icol;
  groups : string array;
  group_depth : int array;
  group_stages : int array;
  group_sync : bool array;
  group_bytes : int array;
  mutable hash : string;  (** lazily memoized content digest; [""] = unset *)
}

let length p = p.n

(* Batch ordinals, wait-consumption indices and per-group ring depths are
   all derivable in one linear pass, because every threadblock replays the
   same program: a load's batch is the count of commits its group has seen,
   a wait consumes the oldest not-yet-consumed commit (or nothing, when the
   program waits before ever committing), and the ring depth is the peak
   number of committed-but-unconsumed batches. *)
let finalize ~groups ~opcode ~arg ~group ~flags =
  let n = Array.length opcode in
  let ng = Array.length groups in
  let batch = Array.make n (-1) in
  let committed = Array.make ng 0 in
  let taken = Array.make ng 0 in
  let popped = Array.make ng 0 in
  let depth = Array.make ng 1 in
  (* Group-table metadata, derived best-effort from the event stream (the
     primary path, [extract_program], fills exact values from the pipeline
     analysis instead): a group is scope-synchronized when any of its
     protocol events carries [flag_sync_group]; its stage count is the
     acquire argument when one exists (ring depth otherwise); its
     per-stage byte footprint is the peak sum of async load bytes joining
     one batch. *)
  let stages = Array.make ng 0 in
  let sync = Array.make ng false in
  let gbytes = Array.make ng 0 in
  let openb = Array.make ng 0 in
  for i = 0 to n - 1 do
    let g = group.(i) in
    let op = opcode.(i) in
    if op = op_load then begin
      if flags.(i) land flag_async <> 0 && g >= 0 then begin
        batch.(i) <- committed.(g);
        openb.(g) <- openb.(g) + arg.(i)
      end
    end
    else if op = op_commit then begin
      if flags.(i) land flag_sync_group <> 0 then sync.(g) <- true;
      if openb.(g) > gbytes.(g) then gbytes.(g) <- openb.(g);
      openb.(g) <- 0;
      batch.(i) <- committed.(g);
      committed.(g) <- committed.(g) + 1;
      let occ = committed.(g) - popped.(g) in
      if occ > depth.(g) then depth.(g) <- occ
    end
    else if op = op_wait then begin
      if flags.(i) land flag_sync_group <> 0 then sync.(g) <- true;
      batch.(i) <- taken.(g);
      taken.(g) <- taken.(g) + 1;
      if popped.(g) < committed.(g) then begin
        arg.(i) <- popped.(g);
        popped.(g) <- popped.(g) + 1
      end
      else arg.(i) <- -1
    end
    else if op = op_acquire then begin
      sync.(g) <- true;
      if arg.(i) > stages.(g) then stages.(g) <- arg.(i)
    end
    else if op = op_release then sync.(g) <- true
  done;
  for g = 0 to ng - 1 do
    if stages.(g) = 0 then stages.(g) <- depth.(g)
  done;
  { n; opcode = icol_of_array opcode; arg = icol_of_array arg;
    group = icol_of_array group; flags = icol_of_array flags;
    batch = icol_of_array batch; groups; group_depth = depth;
    group_stages = stages; group_sync = sync; group_bytes = gbytes;
    hash = "" }

let program_hash p =
  if String.length p.hash = 0 then
    p.hash <-
      Digest.string
        (Marshal.to_string (p.opcode, p.arg, p.group, p.flags, p.groups) []);
  p.hash

let event_at p i =
  let g = p.group.{i} in
  let op = p.opcode.{i} in
  if op = op_load then
    Load
      { level =
          (if p.flags.{i} land flag_shared <> 0 then From_shared
           else From_global);
        bytes = p.arg.{i};
        async = p.flags.{i} land flag_async <> 0;
        group = (if g >= 0 then Some p.groups.(g) else None) }
  else if op = op_store then Store { bytes = p.arg.{i} }
  else if op = op_commit then
    Commit
      { group = p.groups.(g); sync = p.flags.{i} land flag_sync_group <> 0 }
  else if op = op_wait then
    Wait_oldest
      { group = p.groups.(g); sync = p.flags.{i} land flag_sync_group <> 0 }
  else if op = op_acquire then Acquire { group = p.groups.(g); stages = p.arg.{i} }
  else if op = op_release then Release p.groups.(g)
  else if op = op_barrier then Barrier
  else Compute { flops = p.arg.{i} }

let decode p = Array.init p.n (event_at p)

let pack (events : event array) =
  let n = Array.length events in
  let gtbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let glist = ref [] in
  let gn = ref 0 in
  let intern gid =
    match Hashtbl.find_opt gtbl gid with
    | Some i -> i
    | None ->
      let i = !gn in
      Hashtbl.replace gtbl gid i;
      glist := gid :: !glist;
      incr gn;
      i
  in
  let opcode = Array.make n 0 in
  let arg = Array.make n 0 in
  let group = Array.make n (-1) in
  let flags = Array.make n 0 in
  Array.iteri
    (fun i e ->
      match e with
      | Load { level; bytes; async; group = g } ->
        opcode.(i) <- op_load;
        arg.(i) <- bytes;
        flags.(i) <-
          (if async then flag_async else 0)
          lor (match level with From_shared -> flag_shared | From_global -> 0);
        (match g with Some gid -> group.(i) <- intern gid | None -> ())
      | Store { bytes } ->
        opcode.(i) <- op_store;
        arg.(i) <- bytes
      | Commit { group = g; sync } ->
        opcode.(i) <- op_commit;
        flags.(i) <- (if sync then flag_sync_group else 0);
        group.(i) <- intern g
      | Wait_oldest { group = g; sync } ->
        opcode.(i) <- op_wait;
        flags.(i) <- (if sync then flag_sync_group else 0);
        group.(i) <- intern g
      | Acquire { group = g; stages } ->
        opcode.(i) <- op_acquire;
        arg.(i) <- stages;
        flags.(i) <- flag_sync_group;
        group.(i) <- intern g
      | Release g ->
        opcode.(i) <- op_release;
        flags.(i) <- flag_sync_group;
        group.(i) <- intern g
      | Barrier -> opcode.(i) <- op_barrier
      | Compute { flops } ->
        opcode.(i) <- op_compute;
        arg.(i) <- flops)
    events;
  finalize ~groups:(Array.of_list (List.rev !glist)) ~opcode ~arg ~group ~flags

(* --- resolved kernel walker --- *)

(* Compiled index expression: evaluates against the slot environment.
   Unbound variables keep the legacy failure mode (raise at evaluation,
   not at resolution, with the same message). *)
type rexpr = int array -> int

let rec compile_expr bindings (e : Expr.t) : rexpr =
  match e with
  | Expr.Const c -> fun _ -> c
  | Expr.Var v ->
    (match List.assoc_opt v bindings with
     | Some s -> fun env -> Array.unsafe_get env s
     | None ->
       fun _ -> raise (Invalid_argument ("Expr.eval: unbound variable " ^ v)))
  | Expr.Add (a, b) ->
    let fa = compile_expr bindings a and fb = compile_expr bindings b in
    fun env -> fa env + fb env
  | Expr.Sub (a, b) ->
    let fa = compile_expr bindings a and fb = compile_expr bindings b in
    fun env -> fa env - fb env
  | Expr.Mul (a, b) ->
    let fa = compile_expr bindings a and fb = compile_expr bindings b in
    fun env -> fa env * fb env
  | Expr.Div (a, b) ->
    let fa = compile_expr bindings a and fb = compile_expr bindings b in
    fun env -> Expr.floordiv_int (fa env) (fb env)
  | Expr.Mod (a, b) ->
    let fa = compile_expr bindings a and fb = compile_expr bindings b in
    fun env -> Expr.floormod_int (fa env) (fb env)
  | Expr.Min (a, b) ->
    let fa = compile_expr bindings a and fb = compile_expr bindings b in
    fun env -> min (fa env) (fb env)
  | Expr.Max (a, b) ->
    let fa = compile_expr bindings a and fb = compile_expr bindings b in
    fun env -> max (fa env) (fb env)

type rcond = { rc_lhs : rexpr; rc_rhs : rexpr; rc_cmp : Stmt.cmp }

type rstmt =
  | Rseq of rstmt array
  | Rfor of { slot : int; extent : rexpr; body : rstmt }
      (** sequential/unrolled: closes open register-pipeline batches after
          each iteration *)
  | Rwarp of { slot : int; extent : rexpr; body : rstmt }
  | Rpin of { slot : int; body : rstmt }  (** grid loop var pinned to 0 *)
  | Rif of rcond * rstmt
  | Rload of { bytes : int; flags : int; group : int; soft : int }
  | Rloadn of { extent : rexpr; bytes : int; flags : int; group : int;
                soft : int }
      (** a Sequential/Unrolled loop whose entire body is one load (the
          shape copy loops lower to): executed without per-iteration
          dispatch. Iteration-boundary batch closing is preserved — the
          first iteration flushes every open register pipeline, later
          ones can only re-close this load's own group. *)
  | Rstore of { bytes : int }
  | Rmma of { flops : int }  (** retires register batches, then computes *)
  | Runop of { bytes : int }
  | Raccum_global of { bytes : int }
  | Raccum_local of { bytes : int }
  | Rbarrier
  | Racquire of { group : int; stages : int }
  | Rcommit of { group : int }
  | Rwait of { group : int }
  | Rrelease of { group : int }
  | Rnop
  | Rfail of string  (** malformed operands: raise if (and only if) reached *)

(* Reusable extraction buffer: grow-only struct-of-arrays, one per domain.
   Extraction runs on the tuner's hot path (once per cold compile), so the
   event rows are built in domain-local scratch and only the exact-size
   program arrays are allocated per call. *)
type xbuf = {
  mutable xb_in_use : bool;  (** re-entrancy guard (never expected) *)
  mutable xb_cap : int;
  mutable xb_op : icol;
  mutable xb_arg : icol;
  mutable xb_grp : icol;
  mutable xb_flg : icol;
  mutable xb_bat : icol;
}

let xbuf_fresh cap =
  { xb_in_use = false; xb_cap = cap; xb_op = icol_create cap;
    xb_arg = icol_create cap; xb_grp = icol_create cap;
    xb_flg = icol_create cap; xb_bat = icol_create cap }

let xbuf_key = Domain.DLS.new_key (fun () -> xbuf_fresh 1024)

let xbuf_grow b =
  let cap = 2 * b.xb_cap in
  let grow (a : icol) =
    let a' = icol_create cap in
    Bigarray.Array1.blit a (Bigarray.Array1.sub a' 0 b.xb_cap);
    a'
  in
  b.xb_op <- grow b.xb_op;
  b.xb_arg <- grow b.xb_arg;
  b.xb_grp <- grow b.xb_grp;
  b.xb_flg <- grow b.xb_flg;
  b.xb_bat <- grow b.xb_bat;
  b.xb_cap <- cap

(* exact-size copy of the first [n] rows of a scratch column *)
let icol_take (a : icol) n : icol =
  let d = icol_create n in
  Bigarray.Array1.blit (Bigarray.Array1.sub a 0 n) d;
  d

type xstate = {
  env : int array;
  mutable warp_mult : int;
  buf : xbuf;
  mutable len : int;
  (* online batch bookkeeping — the [finalize] recurrence applied at push
     time (the rows are produced in program order, so the two are
     identical by construction); one slot per interned group *)
  g_committed : int array;
  g_taken : int array;
  g_popped : int array;
  g_depth : int array;
  g_flags : int array;
      (** flag bits stamped on the group's commit/wait events
          ([flag_sync_group] for scope pipelines, 0 for soft ones) *)
  (* register ("soft") pipeline bookkeeping, one slot per group *)
  s_gid : int array;  (** interned group index *)
  s_hide : int array;  (** stages - 1: batches the pipeline keeps in flight *)
  s_open : bool array;
  s_batches : int array;
  s_waits : int array;
}

let[@inline] push_row st ~op ~arg ~group ~flags ~batch =
  if st.len = st.buf.xb_cap then xbuf_grow st.buf;
  let b = st.buf in
  let i = st.len in
  Bigarray.Array1.unsafe_set b.xb_op i op;
  Bigarray.Array1.unsafe_set b.xb_arg i arg;
  Bigarray.Array1.unsafe_set b.xb_grp i group;
  Bigarray.Array1.unsafe_set b.xb_flg i flags;
  Bigarray.Array1.unsafe_set b.xb_bat i batch;
  st.len <- i + 1

let[@inline] push_load st ~bytes ~group ~flags =
  push_row st ~op:op_load ~arg:bytes ~group ~flags
    ~batch:
      (if flags land flag_async <> 0 && group >= 0 then
         Array.unsafe_get st.g_committed group
       else -1)

let push_commit st ~group =
  push_row st ~op:op_commit ~arg:0 ~group ~flags:st.g_flags.(group)
    ~batch:st.g_committed.(group);
  let c = st.g_committed.(group) + 1 in
  st.g_committed.(group) <- c;
  let occ = c - st.g_popped.(group) in
  if occ > st.g_depth.(group) then st.g_depth.(group) <- occ

let push_wait st ~group =
  let consumed =
    if st.g_popped.(group) < st.g_committed.(group) then begin
      let p = st.g_popped.(group) in
      st.g_popped.(group) <- p + 1;
      p
    end
    else -1
  in
  push_row st ~op:op_wait ~arg:consumed ~group ~flags:st.g_flags.(group)
    ~batch:st.g_taken.(group);
  st.g_taken.(group) <- st.g_taken.(group) + 1

(* Close the open batch of every register pipeline that accumulated loads. *)
let flush_soft st =
  for s = 0 to Array.length st.s_gid - 1 do
    if st.s_open.(s) then begin
      push_commit st ~group:st.s_gid.(s);
      st.s_batches.(s) <- st.s_batches.(s) + 1;
      st.s_open.(s) <- false
    end
  done

(* Before a compute event: retire register-pipeline batches down to the
   pipeline depth, mirroring the hardware scoreboard stall on the operands
   loaded [stages-1] iterations ago. *)
let soft_waits st =
  flush_soft st;
  for s = 0 to Array.length st.s_gid - 1 do
    while st.s_waits.(s) < st.s_batches.(s) - st.s_hide.(s) do
      push_wait st ~group:st.s_gid.(s);
      st.s_waits.(s) <- st.s_waits.(s) + 1
    done
  done

let rec exec st node =
  match node with
  | Rseq a ->
    for i = 0 to Array.length a - 1 do
      exec st (Array.unsafe_get a i)
    done
  | Rfor { slot; extent; body } ->
    let n = extent st.env in
    for i = 0 to n - 1 do
      Array.unsafe_set st.env slot i;
      exec st body;
      (* An iteration boundary closes open register-pipeline batches
         (e.g. each prologue-loop iteration loads one chunk). *)
      flush_soft st
    done
  | Rwarp { slot; extent; body } ->
    let n = extent st.env in
    let saved = st.warp_mult in
    st.warp_mult <- st.warp_mult * n;
    Array.unsafe_set st.env slot 0;
    exec st body;
    st.warp_mult <- saved
  | Rpin { slot; body } ->
    Array.unsafe_set st.env slot 0;
    exec st body
  | Rif (c, body) ->
    let l = c.rc_lhs st.env and r = c.rc_rhs st.env in
    let holds =
      match c.rc_cmp with
      | Stmt.Eq -> l = r
      | Stmt.Ne -> l <> r
      | Stmt.Lt -> l < r
      | Stmt.Le -> l <= r
    in
    if holds then exec st body
  | Rload { bytes; flags; group; soft } ->
    push_load st ~bytes:(bytes * st.warp_mult) ~group ~flags;
    if soft >= 0 then st.s_open.(soft) <- true
  | Rloadn { extent; bytes; flags; group; soft } ->
    (* Equivalent to [Rfor] over a single [Rload]: the first iteration's
       boundary flush can close *any* open pipeline, so it goes through
       [flush_soft]; from the second iteration on, the only group a flush
       could still close is this load's own, so the commit is emitted
       inline (or skipped entirely for non-pipelined loads). *)
    let n = extent st.env in
    if n > 0 then begin
      let arg = bytes * st.warp_mult in
      push_load st ~bytes:arg ~group ~flags;
      if soft >= 0 then st.s_open.(soft) <- true;
      flush_soft st;
      if soft >= 0 then begin
        let sgid = st.s_gid.(soft) in
        for _ = 2 to n do
          push_load st ~bytes:arg ~group ~flags;
          push_commit st ~group:sgid;
          st.s_batches.(soft) <- st.s_batches.(soft) + 1
        done
      end
      else
        for _ = 2 to n do
          push_load st ~bytes:arg ~group ~flags
        done
    end
  | Rstore { bytes } ->
    push_row st ~op:op_store ~arg:(bytes * st.warp_mult) ~group:(-1) ~flags:0
      ~batch:(-1)
  | Rmma { flops } ->
    soft_waits st;
    push_row st ~op:op_compute ~arg:(flops * st.warp_mult) ~group:(-1)
      ~flags:0 ~batch:(-1)
  | Runop { bytes } ->
    (* Element-wise transforms ride along with copies in our kernels; a
       stand-alone unop is costed as CUDA-core work via its output size. *)
    push_row st ~op:op_compute ~arg:(bytes * st.warp_mult) ~group:(-1)
      ~flags:0 ~batch:(-1)
  | Raccum_global { bytes } ->
    (* read both operands, write the destination *)
    push_load st ~bytes:(bytes * st.warp_mult) ~group:(-1) ~flags:0;
    push_row st ~op:op_store ~arg:(bytes * st.warp_mult) ~group:(-1) ~flags:0
      ~batch:(-1)
  | Raccum_local { bytes } ->
    push_load st ~bytes:(bytes * st.warp_mult) ~group:(-1) ~flags:flag_shared
  | Rbarrier ->
    push_row st ~op:op_barrier ~arg:0 ~group:(-1) ~flags:0 ~batch:(-1)
  | Racquire { group; stages } ->
    push_row st ~op:op_acquire ~arg:stages ~group ~flags:flag_sync_group
      ~batch:(-1)
  | Rcommit { group } -> push_commit st ~group
  | Rwait { group } -> push_wait st ~group
  | Rrelease { group } ->
    push_row st ~op:op_release ~arg:0 ~group ~flags:flag_sync_group
      ~batch:(-1)
  | Rnop -> ()
  | Rfail msg -> invalid_arg msg

let extract_program ~(groups : Alcop_pipeline.Analysis.group list)
    (kernel : Kernel.t) =
  let buffers = Hashtbl.create 16 in
  List.iter
    (fun (b : Buffer.t) -> Hashtbl.replace buffers b.Buffer.name b)
    (Kernel.all_buffers kernel);
  let buffer_of name =
    match Hashtbl.find_opt buffers name with
    | Some b -> b
    | None -> invalid_arg ("Trace: unknown buffer " ^ name)
  in
  let by_buffer = Hashtbl.create 8 in
  List.iter
    (fun (g : Alcop_pipeline.Analysis.group) ->
      List.iter
        (fun n -> Hashtbl.replace by_buffer n g)
        (Alcop_pipeline.Analysis.member_names g))
    groups;
  (* Intern table: group ids in first-use order, shared by resolution and
     the final program. *)
  let gtbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let glist = ref [] in
  let gn = ref 0 in
  let intern gid =
    match Hashtbl.find_opt gtbl gid with
    | Some i -> i
    | None ->
      let i = !gn in
      Hashtbl.replace gtbl gid i;
      glist := gid :: !glist;
      incr gn;
      i
  in
  let softs =
    List.filter
      (fun (g : Alcop_pipeline.Analysis.group) ->
        not g.Alcop_pipeline.Analysis.synchronized)
      groups
  in
  let soft_index gid =
    let rec go i = function
      | [] -> -1
      | (g : Alcop_pipeline.Analysis.group) :: rest ->
        if String.equal g.Alcop_pipeline.Analysis.id gid then i
        else go (i + 1) rest
    in
    go 0 softs
  in
  let stages_of gid =
    match
      List.find_opt
        (fun (g : Alcop_pipeline.Analysis.group) ->
          String.equal g.Alcop_pipeline.Analysis.id gid)
        groups
    with
    | Some g -> g.Alcop_pipeline.Analysis.stages
    | None -> 2
  in
  let bytes_of_region (r : Stmt.region) =
    let b = buffer_of r.Stmt.buffer in
    Stmt.region_elems r * Dtype.size_bytes b.Buffer.dtype
  in
  let nslots = ref 0 in
  let rec resolve bindings stmt =
    match stmt with
    | Stmt.Seq ss -> Rseq (Array.of_list (List.map (resolve bindings) ss))
    | Stmt.Alloc { body; _ } -> resolve bindings body
    | Stmt.For { var; extent; kind; body } ->
      let slot = !nslots in
      incr nslots;
      let inner = (var, slot) :: bindings in
      (match kind with
       | Stmt.Parallel (Stmt.Block_x | Stmt.Block_y | Stmt.Block_z) ->
         Rpin { slot; body = resolve inner body }
       | Stmt.Parallel (Stmt.Warp_x | Stmt.Warp_y) ->
         Rwarp
           { slot; extent = compile_expr bindings extent;
             body = resolve inner body }
       | Stmt.Sequential | Stmt.Unrolled ->
         let extent = compile_expr bindings extent in
         (match resolve inner body with
          | Rload { bytes; flags; group; soft } ->
            (* copy loops lower to a loop over one load whose size ignores
               the loop variable — run them without per-iteration dispatch *)
            Rloadn { extent; bytes; flags; group; soft }
          | rb -> Rfor { slot; extent; body = rb }))
    | Stmt.If { cond; then_ } ->
      Rif
        ( { rc_lhs = compile_expr bindings cond.Stmt.lhs;
            rc_rhs = compile_expr bindings cond.Stmt.rhs;
            rc_cmp = cond.Stmt.cmp },
          resolve bindings then_ )
    | Stmt.Copy { kind; dst; src; _ } ->
      let dst_buf = buffer_of dst.Stmt.buffer in
      let bytes = bytes_of_region src in
      (match dst_buf.Buffer.scope with
       | Buffer.Global -> Rstore { bytes }
       | Buffer.Shared | Buffer.Register ->
         let src_buf = buffer_of src.Stmt.buffer in
         let shared =
           match src_buf.Buffer.scope with
           | Buffer.Global -> 0
           | Buffer.Shared | Buffer.Register -> flag_shared
         in
         let async = kind = Stmt.Async_copy in
         let g = Hashtbl.find_opt by_buffer dst.Stmt.buffer in
         let gidx =
           match g with
           | Some g -> intern g.Alcop_pipeline.Analysis.id
           | None -> -1
         in
         let soft =
           match g with
           | Some g when not g.Alcop_pipeline.Analysis.synchronized ->
             soft_index g.Alcop_pipeline.Analysis.id
           | Some _ | None -> -1
         in
         Rload
           { bytes; flags = (if async then flag_async else 0) lor shared;
             group = gidx; soft })
    | Stmt.Fill _ -> Rnop
    | Stmt.Mma { c; a; _ } ->
      (match Stmt.squeeze_lens c, Stmt.squeeze_lens a with
       | [ m; n ], [ _; k ] -> Rmma { flops = 2 * m * n * k }
       | _ -> Rfail "Trace: malformed mma operands")
    | Stmt.Unop { dst; _ } -> Runop { bytes = bytes_of_region dst }
    | Stmt.Accum { dst; src } ->
      let dst_buf = buffer_of dst.Stmt.buffer in
      let bytes = bytes_of_region src in
      (match dst_buf.Buffer.scope with
       | Buffer.Global -> Raccum_global { bytes }
       | Buffer.Shared | Buffer.Register -> Raccum_local { bytes })
    | Stmt.Sync s ->
      (match s with
       | Stmt.Barrier -> Rbarrier
       | Stmt.Producer_acquire g ->
         Racquire { group = intern g; stages = stages_of g }
       | Stmt.Producer_commit g -> Rcommit { group = intern g }
       | Stmt.Consumer_wait g -> Rwait { group = intern g }
       | Stmt.Consumer_release g -> Rrelease { group = intern g })
  in
  let rbody = resolve [] kernel.Kernel.body in
  (* interning for [s_gid] can still add group ids, so the counter arrays
     are sized only after it *)
  let s_gid =
    Array.of_list
      (List.map
         (fun (g : Alcop_pipeline.Analysis.group) ->
           intern g.Alcop_pipeline.Analysis.id)
         softs)
  in
  let s_hide =
    Array.of_list
      (List.map
         (fun (g : Alcop_pipeline.Analysis.group) ->
           g.Alcop_pipeline.Analysis.stages - 1)
         softs)
  in
  let ng = !gn in
  (* Exact group-table metadata from the pipeline analysis: protocol kind
     (stamped on commit/wait flags via [g_flags]), declared stage count and
     the pass's per-stage byte footprint. Groups the analysis does not
     know (never happens today) default to a soft single-stage entry. *)
  let g_flags = Array.make (max 1 ng) 0 in
  let g_stages = Array.make (max 1 ng) 0 in
  let g_sync = Array.make (max 1 ng) false in
  let g_bytes = Array.make (max 1 ng) 0 in
  List.iter
    (fun (g : Alcop_pipeline.Analysis.group) ->
      match Hashtbl.find_opt gtbl g.Alcop_pipeline.Analysis.id with
      | None -> ()  (* group emitted no events; keep it out of the table *)
      | Some idx ->
        g_stages.(idx) <- g.Alcop_pipeline.Analysis.stages;
        g_bytes.(idx) <- Alcop_pipeline.Analysis.stage_footprint_bytes g;
        if g.Alcop_pipeline.Analysis.synchronized then begin
          g_sync.(idx) <- true;
          g_flags.(idx) <- flag_sync_group
        end)
    groups;
  let scratch =
    let b = Domain.DLS.get xbuf_key in
    if b.xb_in_use then xbuf_fresh 1024 else b
  in
  scratch.xb_in_use <- true;
  Fun.protect ~finally:(fun () -> scratch.xb_in_use <- false) @@ fun () ->
  let st =
    { env = Array.make (max 1 !nslots) 0; warp_mult = 1; buf = scratch;
      len = 0;
      g_committed = Array.make (max 1 ng) 0;
      g_taken = Array.make (max 1 ng) 0;
      g_popped = Array.make (max 1 ng) 0;
      g_depth = Array.make (max 1 ng) 1;
      g_flags;
      s_gid; s_hide;
      s_open = Array.make (List.length softs) false;
      s_batches = Array.make (List.length softs) 0;
      s_waits = Array.make (List.length softs) 0 }
  in
  exec st rbody;
  let len = st.len in
  let group_depth = Array.sub st.g_depth 0 ng in
  let group_stages = Array.sub g_stages 0 ng in
  let group_sync = Array.sub g_sync 0 ng in
  let group_bytes = Array.sub g_bytes 0 ng in
  for g = 0 to ng - 1 do
    if group_stages.(g) = 0 then group_stages.(g) <- group_depth.(g)
  done;
  { n = len;
    opcode = icol_take scratch.xb_op len;
    arg = icol_take scratch.xb_arg len;
    group = icol_take scratch.xb_grp len;
    flags = icol_take scratch.xb_flg len;
    batch = icol_take scratch.xb_bat len;
    groups = Array.of_list (List.rev !glist);
    group_depth; group_stages; group_sync; group_bytes;
    hash = "" }

let extract ~groups kernel = decode (extract_program ~groups kernel)

(* Aggregate statistics of a trace; used by tests and reporting. *)
type stats = {
  global_load_bytes : int;
  shared_load_bytes : int;
  store_bytes : int;
  flops : int;
  n_events : int;
}

let stats_of trace =
  Array.fold_left
    (fun acc e ->
      match e with
      | Load { level = From_global; bytes; _ } ->
        { acc with global_load_bytes = acc.global_load_bytes + bytes }
      | Load { level = From_shared; bytes; _ } ->
        { acc with shared_load_bytes = acc.shared_load_bytes + bytes }
      | Store { bytes } -> { acc with store_bytes = acc.store_bytes + bytes }
      | Compute { flops } -> { acc with flops = acc.flops + flops }
      | Commit _ | Wait_oldest _ | Acquire _ | Release _ | Barrier -> acc)
    { global_load_bytes = 0; shared_load_bytes = 0; store_bytes = 0; flops = 0;
      n_events = Array.length trace }
    trace

let stats_of_program p =
  let global = ref 0 and shared = ref 0 and stores = ref 0 and flops = ref 0 in
  for i = 0 to p.n - 1 do
    let op = p.opcode.{i} in
    if op = op_load then begin
      if p.flags.{i} land flag_shared <> 0 then shared := !shared + p.arg.{i}
      else global := !global + p.arg.{i}
    end
    else if op = op_store then stores := !stores + p.arg.{i}
    else if op = op_compute then flops := !flops + p.arg.{i}
  done;
  { global_load_bytes = !global; shared_load_bytes = !shared;
    store_bytes = !stores; flops = !flops; n_events = p.n }
