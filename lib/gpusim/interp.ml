(* Functional interpreter for the statement IR.

   Executes kernels on real data. Two modes:

   - [Eager]: every copy lands immediately; parallel loops run sequentially
     (their iterations write disjoint data). This executes the unpipelined
     input IR and gives the reference behaviour.

   - [Strict]: asynchronous copies into scope-synchronized pipeline groups
     (shared memory on Ampere) follow the hardware's commit/wait semantics.
     An issued copy is staged invisibly; it only lands in visible memory
     when a consumer_wait retires its commit group. Copies outside an
     acquire window, waits without a committed group, releases before
     waits, and pipeline over-subscription all raise. A transformed kernel
     that misplaces or omits synchronization therefore either raises or
     produces numerically wrong output — this is how the repository
     "runs the generated code on the GPU". *)

open Alcop_ir

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

type mode =
  | Eager
  | Strict

type storage = {
  buffer : Buffer.t;
  data : Tensor.data;  (* unboxed float64 bigarray, like [Tensor] itself *)
  strides : int array;
}

type write = {
  target : storage;
  flat : int;
  value : float;
}

type pipe_state = {
  group : Alcop_pipeline.Analysis.group;
  mutable acquired : bool;
  mutable current : write list;
  pending : write list Queue.t;
  mutable committed : int;
  mutable released : int;
  mutable waited : int;
}

type state = {
  mode : mode;
  memory : (string, storage) Hashtbl.t;
  env : (string, int) Hashtbl.t;
  pipes : (string, pipe_state) Hashtbl.t;
  group_of_buffer : string -> pipe_state option;
  (* Race detection for parallel loops: the interpreter runs parallel
     iterations sequentially, so two iterations writing the same cell would
     silently produce an order-dependent result instead of the
     nondeterminism real hardware gives. We record, per storage cell, the
     parallel-coordinate tuple that last wrote it; a write under different
     coordinates is a race. Sequential-loop rewrites by the same
     coordinates are legitimate (e.g. the K loop restaging shared memory). *)
  check_races : bool;
  mutable parallel_coords : (string * int) list;  (** innermost first *)
  owners : (string, (int, (string * int) list) Hashtbl.t) Hashtbl.t;
}

let storage_of_buffer (b : Buffer.t) =
  let data = Tensor.alloc (Buffer.num_elements b) in
  Bigarray.Array1.fill data 0.0;
  { buffer = b; data; strides = Tensor.strides_of b.Buffer.shape }

let storage_of_tensor (b : Buffer.t) (t : Tensor.t) =
  if not (Tensor.shape_equal t.Tensor.shape b.Buffer.shape) then
    fail "input %s has shape [%s] but kernel expects [%s]" b.Buffer.name
      (String.concat "," (List.map string_of_int t.Tensor.shape))
      (String.concat "," (List.map string_of_int b.Buffer.shape));
  let data = Tensor.alloc (Bigarray.Array1.dim t.Tensor.data) in
  Bigarray.Array1.blit t.Tensor.data data;
  { buffer = b; data; strides = t.Tensor.strides }

let record_writes st (target : storage) offs =
  if st.check_races then begin
    let table =
      match Hashtbl.find_opt st.owners target.buffer.Buffer.name with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 64 in
        Hashtbl.replace st.owners target.buffer.Buffer.name t;
        t
    in
    Array.iter
      (fun o ->
        match Hashtbl.find_opt table o with
        | Some coords when coords <> st.parallel_coords ->
          fail
            "data race on %s: element %d written under parallel coordinates              (%s) and (%s)"
            target.buffer.Buffer.name o
            (String.concat ", "
               (List.map (fun (v, i) -> Printf.sprintf "%s=%d" v i) coords))
            (String.concat ", "
               (List.map
                  (fun (v, i) -> Printf.sprintf "%s=%d" v i)
                  st.parallel_coords))
        | _ -> Hashtbl.replace table o st.parallel_coords)
      offs
  end

let lookup st name =
  match Hashtbl.find_opt st.memory name with
  | Some s -> s
  | None -> fail "reference to unallocated buffer %s" name

let eval_expr st e =
  Expr.eval (fun v -> Hashtbl.find_opt st.env v) e

(* Flat element offsets of a region, row-major over its slices, with bounds
   checking. The enumeration order is what makes copies between regions of
   different rank (an extra length-1 stage dimension) well defined. *)
let region_offsets st (r : Stmt.region) =
  let s = lookup st r.Stmt.buffer in
  let dims = Array.of_list s.buffer.Buffer.shape in
  let slices = Array.of_list r.Stmt.slices in
  let rank = Array.length slices in
  if rank <> Array.length dims then
    fail "region on %s has rank %d, buffer has rank %d" r.Stmt.buffer rank
      (Array.length dims);
  let offs = Array.make rank 0 in
  let lens = Array.make rank 0 in
  let total = ref 1 in
  for d = 0 to rank - 1 do
    let sl = slices.(d) in
    let o = eval_expr st sl.Stmt.offset in
    if o < 0 || o + sl.Stmt.len > dims.(d) then
      fail "out-of-bounds access on %s: dim %d, offset %d, len %d, extent %d"
        r.Stmt.buffer d o sl.Stmt.len dims.(d);
    offs.(d) <- o;
    lens.(d) <- sl.Stmt.len;
    total := !total * sl.Stmt.len
  done;
  let result = Array.make !total 0 in
  let idx = Array.make rank 0 in
  let rec enumerate d pos base =
    if d = rank then begin
      result.(!pos) <- base;
      incr pos
    end
    else
      for i = 0 to lens.(d) - 1 do
        idx.(d) <- i;
        enumerate (d + 1) pos (base + ((offs.(d) + i) * s.strides.(d)))
      done
  in
  let pos = ref 0 in
  enumerate 0 pos 0;
  (s, result)

let apply_op fused values =
  match fused with
  | None -> values
  | Some name ->
    let f = Elemwise_ops.find_exn name in
    Array.map f values

let exec_copy st ~(kind : Stmt.copy_kind) ~dst ~src ~fused =
  let src_storage, src_offs = region_offsets st src in
  let dst_storage, dst_offs = region_offsets st dst in
  if Array.length src_offs <> Array.length dst_offs then
    fail "copy size mismatch: %s (%d) <- %s (%d)" dst.Stmt.buffer
      (Array.length dst_offs) src.Stmt.buffer (Array.length src_offs);
  let values =
    apply_op fused (Array.map (fun o -> src_storage.data.{o}) src_offs)
  in
  let staged =
    match st.mode, kind with
    | Strict, Stmt.Async_copy -> st.group_of_buffer dst.Stmt.buffer
    | (Eager | Strict), _ -> None
  in
  match staged with
  | Some pipe when pipe.group.Alcop_pipeline.Analysis.synchronized ->
    if not pipe.acquired then
      fail "async copy into %s outside a producer_acquire window"
        dst.Stmt.buffer;
    let writes =
      Array.to_list
        (Array.mapi
           (fun i o -> { target = dst_storage; flat = o; value = values.(i) })
           dst_offs)
    in
    record_writes st dst_storage dst_offs;
    pipe.current <- pipe.current @ writes
  | Some _ | None ->
    record_writes st dst_storage dst_offs;
    Array.iteri (fun i o -> dst_storage.data.{o} <- values.(i)) dst_offs

let exec_sync st (s : Stmt.sync) =
  let pipe gid =
    match Hashtbl.find_opt st.pipes gid with
    | Some p -> p
    | None -> fail "synchronization on unknown pipeline %s" gid
  in
  if st.mode = Strict then
    match s with
    | Stmt.Barrier -> ()
    | Stmt.Producer_acquire gid ->
      let p = pipe gid in
      if p.committed - p.released >= p.group.Alcop_pipeline.Analysis.stages then
        fail
          "pipeline %s over-subscribed: producer_acquire with %d stages in \
           flight of %d" gid (p.committed - p.released)
          p.group.Alcop_pipeline.Analysis.stages;
      p.acquired <- true
    | Stmt.Producer_commit gid ->
      let p = pipe gid in
      Queue.push p.current p.pending;
      p.current <- [];
      p.committed <- p.committed + 1;
      p.acquired <- false
    | Stmt.Consumer_wait gid ->
      let p = pipe gid in
      (match Queue.take_opt p.pending with
       | None -> fail "consumer_wait on %s with no committed group (deadlock)" gid
       | Some writes ->
         List.iter (fun w -> w.target.data.{w.flat} <- w.value) writes;
         p.waited <- p.waited + 1)
    | Stmt.Consumer_release gid ->
      let p = pipe gid in
      p.released <- p.released + 1;
      if p.released > p.waited then
        fail "consumer_release on %s before the matching consumer_wait" gid

let exec_mma st ~c ~a ~b =
  let c_st, c_offs = region_offsets st c in
  record_writes st c_st c_offs;
  let a_st, a_offs = region_offsets st a in
  let b_st, b_offs = region_offsets st b in
  match Stmt.squeeze_lens c, Stmt.squeeze_lens a, Stmt.squeeze_lens b with
  | [ m; n ], [ _; k ], [ _; _ ] ->
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref c_st.data.{c_offs.((i * n) + j)} in
        for kk = 0 to k - 1 do
          acc :=
            !acc
            +. (a_st.data.{a_offs.((i * k) + kk)}
                *. b_st.data.{b_offs.((j * k) + kk)})
        done;
        c_st.data.{c_offs.((i * n) + j)} <- !acc
      done
    done
  | _ -> fail "mma operands are not (squeezed) rank-2 regions"

(* A new threadblock instance begins when its pipelined buffers are
   re-allocated; the pipeline objects restart with it. *)
let reset_pipe_for st buffer_name =
  match st.group_of_buffer buffer_name with
  | None -> ()
  | Some p ->
    p.acquired <- false;
    p.current <- [];
    Queue.clear p.pending;
    p.committed <- 0;
    p.released <- 0;
    p.waited <- 0

let rec exec st stmt =
  match stmt with
  | Stmt.Seq ss -> List.iter (exec st) ss
  | Stmt.For { var; extent; kind; body } ->
    let n = eval_expr st extent in
    let saved = Hashtbl.find_opt st.env var in
    let parallel = match kind with Stmt.Parallel _ -> true | _ -> false in
    let saved_coords = st.parallel_coords in
    for i = 0 to n - 1 do
      Hashtbl.replace st.env var i;
      if parallel then st.parallel_coords <- (var, i) :: saved_coords;
      exec st body
    done;
    st.parallel_coords <- saved_coords;
    (match saved with
     | Some v -> Hashtbl.replace st.env var v
     | None -> Hashtbl.remove st.env var)
  | Stmt.Alloc { buffer; body } ->
    Hashtbl.replace st.memory buffer.Buffer.name (storage_of_buffer buffer);
    Hashtbl.remove st.owners buffer.Buffer.name;
    reset_pipe_for st buffer.Buffer.name;
    exec st body;
    Hashtbl.remove st.memory buffer.Buffer.name
  | Stmt.If { cond; then_ } ->
    let l = eval_expr st cond.Stmt.lhs in
    let r = eval_expr st cond.Stmt.rhs in
    let holds =
      match cond.Stmt.cmp with
      | Stmt.Eq -> l = r
      | Stmt.Ne -> l <> r
      | Stmt.Lt -> l < r
      | Stmt.Le -> l <= r
    in
    if holds then exec st then_
  | Stmt.Copy { kind; dst; src; fused } -> exec_copy st ~kind ~dst ~src ~fused
  | Stmt.Fill { dst; value } ->
    let s, offs = region_offsets st dst in
    record_writes st s offs;
    Array.iter (fun o -> s.data.{o} <- value) offs
  | Stmt.Mma { c; a; b } -> exec_mma st ~c ~a ~b
  | Stmt.Unop { dst; src; op } ->
    exec_copy st ~kind:Stmt.Sync_copy ~dst ~src ~fused:(Some op)
  | Stmt.Accum { dst; src } ->
    let src_storage, src_offs = region_offsets st src in
    let dst_storage, dst_offs = region_offsets st dst in
    if Array.length src_offs <> Array.length dst_offs then
      fail "accum size mismatch: %s += %s" dst.Stmt.buffer src.Stmt.buffer;
    record_writes st dst_storage dst_offs;
    Array.iteri
      (fun i o ->
        dst_storage.data.{o} <-
          dst_storage.data.{o} +. src_storage.data.{src_offs.(i)})
      dst_offs
  | Stmt.Sync s -> exec_sync st s

let run ?(mode = Strict) ?(check_races = true) ?(groups = [])
    (kernel : Kernel.t) ~(inputs : (string * Tensor.t) list) =
  let memory = Hashtbl.create 16 in
  List.iter
    (fun (b : Buffer.t) ->
      match List.assoc_opt b.Buffer.name inputs with
      | Some t -> Hashtbl.replace memory b.Buffer.name (storage_of_tensor b t)
      | None -> fail "missing input tensor %s" b.Buffer.name)
    kernel.Kernel.inputs;
  List.iter
    (fun (b : Buffer.t) ->
      Hashtbl.replace memory b.Buffer.name (storage_of_buffer b))
    kernel.Kernel.outputs;
  let pipes = Hashtbl.create 4 in
  List.iter
    (fun (g : Alcop_pipeline.Analysis.group) ->
      Hashtbl.replace pipes g.Alcop_pipeline.Analysis.id
        { group = g; acquired = false; current = []; pending = Queue.create ();
          committed = 0; released = 0; waited = 0 })
    groups;
  let buffer_to_pipe = Hashtbl.create 8 in
  List.iter
    (fun (g : Alcop_pipeline.Analysis.group) ->
      List.iter
        (fun name ->
          Hashtbl.replace buffer_to_pipe name
            (Hashtbl.find pipes g.Alcop_pipeline.Analysis.id))
        (Alcop_pipeline.Analysis.member_names g))
    groups;
  let st =
    { mode; memory; env = Hashtbl.create 16; pipes;
      group_of_buffer = Hashtbl.find_opt buffer_to_pipe; check_races;
      parallel_coords = []; owners = Hashtbl.create 8 }
  in
  exec st kernel.Kernel.body;
  List.map
    (fun (b : Buffer.t) ->
      let s = lookup st b.Buffer.name in
      ( b.Buffer.name,
        { Tensor.shape = b.Buffer.shape; strides = s.strides; data = s.data;
          dtype = b.Buffer.dtype } ))
    kernel.Kernel.outputs
