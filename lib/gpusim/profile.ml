(* Simulated-time profiler: re-runs the timing simulator's waves with a
   recording probe attached and turns the raw clock advances into
   per-threadblock timelines, per-stage stall buckets, a text roofline
   report and a Chrome trace of *simulated* time.

   Because the simulator is deterministic and [Timing.plan] hands us
   exactly the wave configs [Timing.run] used, the profiled waves replay
   the very machine states the reported kernel latency came from — the
   recording changes nothing but bookkeeping. *)

module Obs = Alcop_obs.Obs
module Json = Alcop_obs.Json
module Sinks = Alcop_obs.Sinks

type segment = {
  sg_class : Timing.stall_class;
  sg_group : string option;
  sg_stage : int;  (** pipeline stage slot; -1 when not tied to a stage *)
  sg_start : float;
  sg_stop : float;
}

type copy_flight = {
  cf_group : string option;
  cf_stage : int;  (** batch ordinal mod stages; -1 when ungrouped *)
  cf_batch : int;
  cf_level : Trace.level;
  cf_bytes : int;
  cf_issue : float;
  cf_land : float;
}

type tb_profile = {
  tb_index : int;
  tb_cycles : float;
  tb_segments : segment array;  (** contiguous, in time order *)
  tb_flights : copy_flight array;
}

type wave_profile = {
  w_label : string;  (** ["full"] or ["tail"] *)
  w_count : int;  (** how many identical waves the kernel runs *)
  w_residents : int;
  w_active_sms : int;
  w_result : Timing.wave_result;
  w_tbs : tb_profile array;
  w_critical : int;  (** index of the slowest (critical-path) threadblock *)
}

type t = {
  p_op : string;
  p_schedule : string;
  p_timing : Timing.kernel_timing;
  p_waves : wave_profile list;  (** full wave first when both exist *)
  p_stages : (string * int) list;  (** pipeline group id -> stage count *)
  p_program_hash : string;  (** [Trace.program_hash] of the replayed program *)
  p_n_groups : int;  (** group-table size of the packed program *)
  p_n_events : int;  (** packed program length *)
}

let stages_of t gid =
  match List.assoc_opt gid t.p_stages with Some s -> max 1 s | None -> 1

(* --- recording --- *)

let record_wave ~stages label count (cfg : Timing.config) program =
  let advances : Timing.advance list ref = ref [] in
  let flights : Timing.flight list ref = ref [] in
  let probe =
    { Timing.on_advance = (fun a -> advances := a :: !advances);
      on_flight = (fun f -> flights := f :: !flights) }
  in
  let result = Timing.simulate_program ~probe cfg program in
  let seg_of (a : Timing.advance) =
    let stage =
      match a.Timing.adv_group with
      | Some g when a.Timing.adv_ordinal >= 0 ->
        a.Timing.adv_ordinal mod stages g
      | _ -> -1
    in
    { sg_class = a.Timing.adv_class; sg_group = a.Timing.adv_group;
      sg_stage = stage; sg_start = a.Timing.adv_start;
      sg_stop = a.Timing.adv_stop }
  in
  let flight_of (f : Timing.flight) =
    let stage =
      match f.Timing.fl_group with
      | Some g when f.Timing.fl_batch >= 0 -> f.Timing.fl_batch mod stages g
      | _ -> -1
    in
    { cf_group = f.Timing.fl_group; cf_stage = stage;
      cf_batch = f.Timing.fl_batch; cf_level = f.Timing.fl_level;
      cf_bytes = f.Timing.fl_bytes; cf_issue = f.Timing.fl_issue;
      cf_land = f.Timing.fl_land }
  in
  let tbs =
    Array.init cfg.Timing.residents (fun i ->
        let segs =
          List.rev_map seg_of
            (List.filter (fun (a : Timing.advance) -> a.Timing.adv_tb = i)
               !advances)
        in
        let fls =
          List.rev_map flight_of
            (List.filter (fun (f : Timing.flight) -> f.Timing.fl_tb = i)
               !flights)
        in
        let cycles =
          List.fold_left (fun acc s -> Float.max acc s.sg_stop) 0.0 segs
        in
        { tb_index = i; tb_cycles = cycles;
          tb_segments = Array.of_list segs;
          tb_flights = Array.of_list fls })
  in
  let critical = ref 0 in
  Array.iteri
    (fun i tb -> if tb.tb_cycles > tbs.(!critical).tb_cycles then critical := i)
    tbs;
  { w_label = label; w_count = count; w_residents = cfg.Timing.residents;
    w_active_sms = cfg.Timing.active_sms; w_result = result; w_tbs = tbs;
    w_critical = !critical }

let run ?(op = "kernel") ?(schedule = "")
    ~(groups : Alcop_pipeline.Analysis.group list) (req : Timing.request) =
  match Timing.run req with
  | Error f -> Error f
  | Ok timing ->
    (match Timing.plan req with
     | Error f -> Error f
     | Ok pl ->
       let stage_list =
         List.map
           (fun (g : Alcop_pipeline.Analysis.group) ->
             (g.Alcop_pipeline.Analysis.id, g.Alcop_pipeline.Analysis.stages))
           groups
       in
       let stages gid =
         match List.assoc_opt gid stage_list with
         | Some s -> max 1 s
         | None -> 1
       in
       let waves =
         List.filter_map Fun.id
           [ Option.map
               (fun cfg ->
                 record_wave ~stages "full" pl.Timing.full_waves cfg
                   req.program)
               pl.Timing.full_cfg;
             Option.map
               (fun cfg -> record_wave ~stages "tail" 1 cfg req.program)
               pl.Timing.tail_cfg ]
       in
       Ok
         { p_op = op; p_schedule = schedule; p_timing = timing;
           p_waves = waves; p_stages = stage_list;
           p_program_hash = Digest.to_hex (Trace.program_hash req.program);
           p_n_groups = Array.length req.program.Trace.groups;
           p_n_events = Trace.length req.program })

(* --- aggregation --- *)

let class_cycles (tb : tb_profile) cls =
  Array.fold_left
    (fun acc s ->
      if s.sg_class = cls then acc +. (s.sg_stop -. s.sg_start) else acc)
    0.0 tb.tb_segments

(* Per (group, stage) stall totals of one threadblock: only wait segments
   carry a stage slot, so this is the latency the pipeline failed to hide
   at each stage. *)
let stage_stalls (tb : tb_profile) =
  let tbl : (string * int, float) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      match s.sg_group with
      | Some g when s.sg_stage >= 0 ->
        let key = (g, s.sg_stage) in
        let prior = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (prior +. (s.sg_stop -. s.sg_start))
      | _ -> ())
    tb.tb_segments;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let representative t = match t.p_waves with w :: _ -> Some w | [] -> None

(* Per-class cycles of the kernel's critical threadblock (critical TB of
   the representative wave), named for trace/report consumers. Zero
   classes are dropped; because the segments are contiguous, the listed
   classes still sum exactly to that threadblock's cycles — which is what
   lets a stall *diff* between two variants account for the whole cycle
   delta. *)
let stall_breakdown t =
  match representative t with
  | None -> []
  | Some w ->
    let tb = w.w_tbs.(w.w_critical) in
    List.filter_map
      (fun cls ->
        let cyc = class_cycles tb cls in
        if cyc > 0.0 then Some (Timing.stall_class_name cls, cyc) else None)
      Timing.all_stall_classes

let binding_resource t =
  match representative t with
  | None -> "none"
  | Some w ->
    let r = w.w_result in
    let c = r.Timing.cycles in
    if c <= 0.0 then "none"
    else
      let candidates =
        [ ("tensor cores", r.Timing.compute_busy /. c);
          ("DRAM bandwidth", r.Timing.dram_busy /. c);
          ("LLC bandwidth", r.Timing.llc_busy /. c);
          ("shared-memory ports", r.Timing.smem_busy /. c) ]
      in
      fst
        (List.fold_left
           (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
           ("tensor cores", -1.0) candidates)

let dominant_stall t =
  match representative t with
  | None -> Timing.Sync_wait
  | Some w ->
    let tb = w.w_tbs.(w.w_critical) in
    fst
      (List.fold_left
         (fun (bc, bv) cls ->
           let v = class_cycles tb cls in
           if v > bv then (cls, v) else (bc, bv))
         (Timing.Sync_wait, -1.0)
         (List.filter (fun c -> c <> Timing.Compute) Timing.all_stall_classes))

(* --- text report --- *)

let report t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let tm = t.p_timing in
  line "profile: %s%s" t.p_op
    (if String.equal t.p_schedule "" then "" else "  [" ^ t.p_schedule ^ "]");
  line "kernel:  %.0f cycles (%.1f us), %d wave%s, %d TB/SM (limiter: %s), launch %.0f cycles"
    tm.Timing.total_cycles tm.Timing.microseconds tm.Timing.n_waves
    (if tm.Timing.n_waves = 1 then "" else "s")
    tm.Timing.tbs_per_sm tm.Timing.occupancy_limiter
    Timing.launch_overhead_cycles;
  (match representative t with
   | Some w when w.w_result.Timing.cycles > 0.0 ->
     let r = w.w_result in
     let c = r.Timing.cycles in
     line
       "roofline (%s wave): compute %4.1f%% | dram %4.1f%% | llc %4.1f%% | smem %4.1f%%  ->  binding: %s"
       w.w_label
       (100.0 *. r.Timing.compute_busy /. c)
       (100.0 *. r.Timing.dram_busy /. c)
       (100.0 *. r.Timing.llc_busy /. c)
       (100.0 *. r.Timing.smem_busy /. c)
       (binding_resource t)
   | _ -> ());
  List.iter
    (fun w ->
      line "";
      line "wave %s x%d: %d TB/SM on %d SMs, %.0f cycles" w.w_label w.w_count
        w.w_residents w.w_active_sms w.w_result.Timing.cycles;
      let tb = w.w_tbs.(w.w_critical) in
      if tb.tb_cycles > 0.0 then begin
        line "  stall breakdown (critical TB %d, %.0f cycles):" tb.tb_index
          tb.tb_cycles;
        let shown =
          List.filter_map
            (fun cls ->
              let cyc = class_cycles tb cls in
              if cyc > 0.0 then Some (cls, cyc) else None)
            Timing.all_stall_classes
        in
        let total = List.fold_left (fun a (_, c) -> a +. c) 0.0 shown in
        List.iter
          (fun (cls, cyc) ->
            line "    %-10s %5.1f%%  %12.1f cycles"
              (Timing.stall_class_name cls)
              (100.0 *. cyc /. tb.tb_cycles)
              cyc)
          shown;
        line "    %-10s %5.1f%%  %12.1f cycles" "total"
          (100.0 *. total /. tb.tb_cycles)
          total;
        let per_stage = stage_stalls tb in
        if per_stage <> [] then begin
          line "  per-stage wait stalls (latency the pipeline failed to hide):";
          List.iter
            (fun ((g, stage), cyc) ->
              line "    %s stage %d/%d: %10.1f cycles (%4.1f%%)" g stage
                (stages_of t g) cyc
                (100.0 *. cyc /. tb.tb_cycles))
            per_stage
        end
      end)
    t.p_waves;
  Buffer.contents buf

(* --- export --- *)

(* Track layout: one Chrome process per wave, and within it one "exec"
   thread per threadblock (the contiguous stall segments) plus one thread
   per (threadblock, group, stage) showing async copies in flight — ring
   slots of one stage never overlap, so each is a clean track. Timestamps
   are raw simulated cycles; the sink is installed with [ts_to_us:Fun.id]
   so one cycle renders as one microsecond. *)
let chrome_events t =
  let events = ref [] in
  let add e = events := e :: !events in
  (* first event anchors the sink origin at simulated time 0 *)
  add
    (Obs.Point
       { name = "profile"; ts = 0.0;
         fields =
           [ ("op", Json.Str t.p_op); ("schedule", Json.Str t.p_schedule);
             ("total_cycles", Json.Float t.p_timing.Timing.total_cycles);
             ("program_hash", Json.Str t.p_program_hash);
             ("n_groups", Json.Int t.p_n_groups);
             ("n_events", Json.Int t.p_n_events);
             ("#process_name", Json.Str "alcop profile") ] });
  List.iteri
    (fun wi w ->
      let pid = wi + 2 in
      let pname =
        Printf.sprintf "wave %s x%d (%d TB/SM, %d SMs)" w.w_label w.w_count
          w.w_residents w.w_active_sms
      in
      Array.iter
        (fun tb ->
          let exec_tid = (tb.tb_index * 32) + 1 in
          let exec_route extra =
            [ ("#pid", Json.Int pid); ("#tid", Json.Int exec_tid);
              ("#process_name", Json.Str pname);
              ("#thread_name",
               Json.Str (Printf.sprintf "tb%d exec" tb.tb_index)) ]
            @ extra
          in
          Array.iter
            (fun s ->
              let name =
                match s.sg_group with
                | Some g when s.sg_stage >= 0 ->
                  Printf.sprintf "%s %s[s%d]"
                    (Timing.stall_class_name s.sg_class) g s.sg_stage
                | _ -> Timing.stall_class_name s.sg_class
              in
              add
                (Obs.Span_end
                   { name; ts = s.sg_start; dur = s.sg_stop -. s.sg_start;
                     depth = 0;
                     fields =
                       exec_route
                         [ ("class",
                            Json.Str (Timing.stall_class_name s.sg_class));
                           ("stage", Json.Int s.sg_stage) ] }))
            tb.tb_segments;
          (* async copy flights, one track per (group, stage) ring slot *)
          Array.iter
            (fun f ->
              match f.cf_group with
              | Some g when f.cf_stage >= 0 ->
                let tid = exec_tid + 1 + f.cf_stage in
                add
                  (Obs.Span_end
                     { name = Printf.sprintf "copy %s b%d (%dB)" g f.cf_batch
                           f.cf_bytes;
                       ts = f.cf_issue; dur = f.cf_land -. f.cf_issue;
                       depth = 0;
                       fields =
                         [ ("#pid", Json.Int pid); ("#tid", Json.Int tid);
                           ("#thread_name",
                            Json.Str
                              (Printf.sprintf "tb%d %s s%d" tb.tb_index g
                                 f.cf_stage));
                           ("bytes", Json.Int f.cf_bytes);
                           ("batch", Json.Int f.cf_batch);
                           ("level",
                            Json.Str
                              (match f.cf_level with
                               | Trace.From_global -> "global"
                               | Trace.From_shared -> "shared")) ] })
              | _ -> ())
            tb.tb_flights)
        w.w_tbs;
      (* cumulative stall counters over the critical threadblock of the
         representative wave only — one counter track per stall class *)
      if wi = 0 then begin
        let tb = w.w_tbs.(w.w_critical) in
        let totals = Hashtbl.create 8 in
        Array.iter
          (fun s ->
            let cls = Timing.stall_class_name s.sg_class in
            let prior = Option.value ~default:0.0 (Hashtbl.find_opt totals cls) in
            let now = prior +. (s.sg_stop -. s.sg_start) in
            Hashtbl.replace totals cls now;
            add (Obs.Gauge { name = "stall." ^ cls; value = now; ts = s.sg_stop }))
          tb.tb_segments
      end)
    t.p_waves;
  List.rev !events

let emit_to (sink : Obs.sink) t =
  List.iter sink.Obs.emit (chrome_events t);
  sink.Obs.close ()

let write_chrome_trace path t =
  emit_to (Sinks.chrome_trace_file ~ts_to_us:Fun.id path) t

let write_jsonl path t = emit_to (Sinks.jsonl_file path) t
