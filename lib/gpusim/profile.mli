(** Simulated-time profiler.

    Re-runs the timing simulator's waves with a recording {!Timing.probe}
    attached and turns the raw clock advances into per-threadblock
    timelines, per-stage stall buckets, a text roofline report, and a
    Chrome trace of {e simulated} time (one track per threadblock plus one
    per async-copy stage slot). Deterministic: the profiled waves replay
    exactly the machine states behind the latency {!Timing.run} reported. *)

type segment = {
  sg_class : Timing.stall_class;
  sg_group : string option;
  sg_stage : int;  (** pipeline stage slot; [-1] when not tied to a stage *)
  sg_start : float;
  sg_stop : float;
}

type copy_flight = {
  cf_group : string option;
  cf_stage : int;  (** batch ordinal mod stages; [-1] when ungrouped *)
  cf_batch : int;
  cf_level : Trace.level;
  cf_bytes : int;
  cf_issue : float;
  cf_land : float;
}

type tb_profile = {
  tb_index : int;
  tb_cycles : float;
  tb_segments : segment array;
      (** contiguous in time: per-class sums telescope to [tb_cycles] *)
  tb_flights : copy_flight array;
}

type wave_profile = {
  w_label : string;  (** ["full"] or ["tail"] *)
  w_count : int;  (** how many identical waves the kernel runs *)
  w_residents : int;
  w_active_sms : int;
  w_result : Timing.wave_result;
  w_tbs : tb_profile array;
  w_critical : int;  (** index of the slowest (critical-path) threadblock *)
}

type t = {
  p_op : string;
  p_schedule : string;
  p_timing : Timing.kernel_timing;
  p_waves : wave_profile list;  (** full wave first when both exist *)
  p_stages : (string * int) list;  (** pipeline group id -> stage count *)
  p_program_hash : string;
      (** hex [Trace.program_hash] of the replayed packed program *)
  p_n_groups : int;  (** group-table size of the packed program *)
  p_n_events : int;  (** packed program length *)
}

val run :
  ?op:string ->
  ?schedule:string ->
  groups:Alcop_pipeline.Analysis.group list ->
  Timing.request ->
  (t, Occupancy.failure) result

val class_cycles : tb_profile -> Timing.stall_class -> float
(** Total cycles of one threadblock attributed to one stall class. *)

val stage_stalls : tb_profile -> ((string * int) * float) list
(** Wait-stall cycles per (group, stage slot), sorted — the latency the
    pipeline failed to hide at each stage. *)

val representative : t -> wave_profile option
(** The wave whose cycles dominate the kernel (full when one exists). *)

val stall_breakdown : t -> (string * float) list
(** Per-stall-class cycles of the critical threadblock of the
    representative wave, in {!Timing.all_stall_classes} order with zero
    classes dropped. The classes partition that threadblock's time, so
    the values sum exactly to its cycle count — a stall diff between two
    variants therefore accounts for the whole cycle delta. *)

val binding_resource : t -> string
(** The busiest server of the representative wave, by busy fraction. *)

val dominant_stall : t -> Timing.stall_class
(** Largest non-[Compute] stall class of the critical threadblock. *)

val report : t -> string
(** Human-readable report: kernel summary, roofline, per-wave stall
    breakdown (summing to 100% of the critical threadblock's cycles) and
    per-stage wait stalls. *)

val chrome_events : t -> Alcop_obs.Obs.event list
(** The profile as [Obs] events with simulated-cycle timestamps, routed
    onto per-threadblock and per-stage tracks via the Chrome sink's
    reserved [#pid]/[#tid] fields. *)

val write_chrome_trace : string -> t -> unit
(** Write the Chrome trace (simulated time, 1 cycle = 1 us). *)

val write_jsonl : string -> t -> unit
(** Write the same events as a JSONL log. *)
