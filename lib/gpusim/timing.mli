(** Discrete-event timing simulator.

    One "wave" simulates the co-resident threadblocks of one SM replaying
    the kernel's event trace while contending for DRAM bandwidth, LLC
    bandwidth, shared-memory throughput and the tensor cores. Kernel
    latency is wave latency times the number of threadblock waves (the
    paper's threadblock-batch model) plus the partial tail wave and launch
    overhead.

    Deliberately richer than the analytical model of paper Table I — cache
    locality, wave quantization, bank conflicts, issue/launch overhead and
    a deterministic residual perturbation — so learned cost models retain
    an edge over the analytical model alone (paper Sec. IV-C). *)

type config = {
  hw : Alcop_hw.Hw_config.t;
  residents : int;       (** threadblocks resident on the simulated SM *)
  active_sms : int;      (** SMs sharing device bandwidth *)
  warps_per_tb : int;
  miss_rate : float;     (** fraction of global-load bytes paid in DRAM *)
  smem_penalty : float;  (** bank-conflict multiplier *)
  issue_overhead : float;
  barrier_groups : string list;
      (** scope-synchronized pipeline groups whose waits act as hoisting
          barriers, like [Barrier] itself *)
}

type wave_result = {
  cycles : float;
  compute_busy : float;
  dram_busy : float;
  llc_busy : float;
  smem_busy : float;
}

val simulate_wave : config -> Trace.event array -> wave_result

type request = {
  hw : Alcop_hw.Hw_config.t;
  trace : Trace.event array;
  total_tbs : int;
  warps_per_tb : int;
  smem_per_tb : int;
  regs_per_thread : int;
  grid_m : int;
  grid_n : int;
  grid_z : int;
  tb_m : int;
  tb_n : int;
  tb_k : int;
  elem_bytes : int;
  swizzle : bool;
  jitter_key : int;
  barrier_groups : string list;
}

type kernel_timing = {
  total_cycles : float;
  microseconds : float;
  n_waves : int;
  tbs_per_sm : int;
  occupancy_limiter : string;
  wave_cycles : float;
  tail_cycles : float;
  miss_rate : float;
  compute_utilization : float;
  wave_busy : wave_result option;
      (** raw busy breakdown of the representative wave (full wave when one
          exists, else the tail wave); [None] for an empty trace *)
}

val launch_overhead_cycles : float

val jitter : int -> float
(** Deterministic residual multiplier in [0.97, 1.03], keyed by schedule. *)

val bank_conflict_penalty : swizzle:bool -> tb_k:int -> elem_bytes:int -> float

val run : request -> (kernel_timing, Occupancy.failure) result
(** Simulate a whole kernel launch. [Error] when the threadblock exceeds
    per-threadblock hardware resources (the schedule "fails to compile").
    When an [Alcop_obs] sink is installed, emits gauges for the
    compute/DRAM/LLC/smem busy fractions ([timing.busy.*]) and the
    occupancy decision ([timing.tbs_per_sm], [timing.n_waves],
    [timing.miss_rate], plus a [timing.occupancy] point carrying the
    limiter). *)
