(** Discrete-event timing simulator.

    One "wave" simulates the co-resident threadblocks of one SM replaying
    the kernel's event trace while contending for DRAM bandwidth, LLC
    bandwidth, shared-memory throughput and the tensor cores. Kernel
    latency is wave latency times the number of threadblock waves (the
    paper's threadblock-batch model) plus the partial tail wave and launch
    overhead.

    Deliberately richer than the analytical model of paper Table I — cache
    locality, wave quantization, bank conflicts, issue/launch overhead and
    a deterministic residual perturbation — so learned cost models retain
    an edge over the analytical model alone (paper Sec. IV-C). *)

type config = {
  hw : Alcop_hw.Hw_config.t;
  residents : int;       (** threadblocks resident on the simulated SM *)
  active_sms : int;      (** SMs sharing device bandwidth *)
  warps_per_tb : int;
  miss_rate : float;     (** fraction of global-load bytes paid in DRAM *)
  smem_penalty : float;  (** bank-conflict multiplier *)
  issue_overhead : float;
  barrier_groups : string list;
      (** scope-synchronized pipeline groups whose waits act as hoisting
          barriers, like [Barrier] itself *)
}

type wave_result = {
  cycles : float;
  compute_busy : float;
  dram_busy : float;
  llc_busy : float;
  smem_busy : float;
}

(** {1 Stall attribution}

    Every advance of a threadblock's simulated clock carries a stall
    class. The intervals reported for one threadblock are contiguous and
    non-overlapping, so per-class totals sum exactly to that
    threadblock's finish time (the telescoping invariant [Profile] and
    the tests rely on). *)

type stall_class =
  | Compute    (** tensor cores doing useful work (incl. queueing for them) *)
  | Dram_bw    (** waiting on loads dominated by DRAM bandwidth/queueing *)
  | Llc_bw     (** waiting on loads dominated by LLC bandwidth/queueing *)
  | Smem_port  (** waiting on shared-memory throughput (incl. conflicts) *)
  | Sync_wait  (** barriers, drains, and pure-latency waits *)
  | Issue      (** fixed per-event issue overhead *)
  | Launch     (** kernel launch overhead — never inside a wave *)

val stall_class_name : stall_class -> string

val all_stall_classes : stall_class list

type advance = {
  adv_tb : int;                 (** threadblock index within the wave *)
  adv_class : stall_class;
  adv_group : string option;
      (** pipeline group whose wait caused the interval, if any *)
  adv_ordinal : int;
      (** ordinal of the consumed batch within its group (stage slot =
          ordinal mod stages); [-1] for intervals not tied to a batch *)
  adv_start : float;
  adv_stop : float;
}

type flight = {
  fl_tb : int;
  fl_group : string option;
  fl_batch : int;  (** batch ordinal within the group; [-1] when ungrouped *)
  fl_async : bool;
  fl_level : Trace.level;
  fl_bytes : int;
  fl_issue : float;
  fl_land : float;
}

type probe = {
  on_advance : advance -> unit;
  on_flight : flight -> unit;
}

(** {1 Pipeline probe}

    Opt-in channel for the pipeline observatory ({!Pipeview}), separate
    from {!probe}: the [advance] stream materializes only non-empty stall
    intervals, so a wait whose batch already landed — positive prefetch
    slack, the thing multi-stage buffering exists to produce — is
    invisible there. These events carry the ready/start cycle pair of
    every commit and wait regardless of whether anyone stalled. With the
    probe absent the engine performs no extra work or allocation. *)

type pipe_event =
  | Fill of {
      pf_tb : int;
      pf_group : int;  (** index into [Trace.program.groups] *)
      pf_batch : int;  (** batch ordinal the commit closes *)
      pf_commit : float;  (** cycle the commit issues *)
      pf_ready : float;
          (** cycle the batch's last async load lands ([0.] when the
              batch contains no loads) *)
    }
  | Consume of {
      pc_tb : int;
      pc_group : int;
      pc_ordinal : int;  (** consumption ordinal of the wait *)
      pc_consumed : int;
          (** committed batch index it consumes; [-1] when the wait fired
              before any commit *)
      pc_start : float;  (** cycle the wait begins; prefetch slack is
                             [pc_start -. pc_ready] — negative means the
                             consumer stalled (exposed latency) *)
      pc_ready : float;  (** cycle the consumed batch landed *)
      pc_finish : float;  (** [max pc_start pc_ready] *)
    }
  | Barrier_wait of { pw_tb : int; pw_start : float; pw_finish : float }
  | Drain of { pd_tb : int; pd_start : float; pd_finish : float }
      (** end-of-program wait for outstanding loads/stores; [pd_finish]
          is the threadblock's completion time *)

val simulate_program :
  ?probe:probe -> ?pipe:(pipe_event -> unit) -> config -> Trace.program ->
  wave_result
(** Replay one wave of a packed program. This is the engine: flat
    array-backed scoreboard state drawn from a domain-local scratch arena,
    O(1) allocation per wave. With [?probe], reports every clock advance
    ([on_advance]) and every load's issue-to-land flight ([on_advance]
    intervals of one threadblock are contiguous from 0 to its finish
    time). With [?pipe], additionally reports every pipeline fill/consume
    and barrier/drain wait. Without either the attribution bookkeeping is
    skipped entirely. *)

val simulate_wave :
  ?probe:probe -> ?pipe:(pipe_event -> unit) -> config ->
  Trace.event array -> wave_result
(** [simulate_program] over [Trace.pack] — the boxed-event view, for tests
    and hand-built traces. *)

(** {1 Incremental wave reuse}

    Opt-in cache of wave results keyed by (program content hash,
    residents, active SMs), with a structural config/program check on hit.
    Between tuner trials, candidate schedules that share a wave shape skip
    re-simulation. Probe-carrying waves (profiling, observability gauges)
    always simulate. *)

val with_wave_reuse : (unit -> 'a) -> 'a
(** Run [f] with wave-result reuse enabled (process-wide flag; nests). *)

val wave_reuse_stats : unit -> int * int
(** [(hits, misses)] accumulated since process start. Deliberately a
    function rather than [Obs] telemetry: cache traffic depends on trial
    scheduling order, and the -j determinism contract says observability
    streams must not. *)

(** {2 Disk tier}

    An optional persistence layer behind the in-memory wave cache,
    injected from the layer above (the artifact store lives in [Alcop]
    which depends on this library). On a memory miss the loader is
    consulted first; on a fresh simulation the saver is offered the
    result. The loader receives the full {!config} so it can refuse
    entries recorded under a different machine model — a load must
    return a result only when it is exactly what simulation would
    produce. *)

type wave_persist = {
  wp_load : program_hash:string -> config -> wave_result option;
  wp_save : program_hash:string -> config -> wave_result -> unit;
}

val set_wave_persist : wave_persist option -> unit
(** Install (or remove, with [None]) the process-wide disk tier. *)

val wave_persist_stats : unit -> int * int
(** [(disk hits, disk misses)] since process start; a function for the
    same -j determinism reason as {!wave_reuse_stats}. *)

val wave_cache_clear : unit -> unit
(** Drop the in-memory wave cache (counters are kept). Exists so tests
    can force the next lookup to the disk tier, simulating a fresh
    process. *)

type request = {
  hw : Alcop_hw.Hw_config.t;
  program : Trace.program;
  total_tbs : int;
  warps_per_tb : int;
  smem_per_tb : int;
  regs_per_thread : int;
  grid_m : int;
  grid_n : int;
  grid_z : int;
  tb_m : int;
  tb_n : int;
  tb_k : int;
  elem_bytes : int;
  swizzle : bool;
  jitter_key : int;
  barrier_groups : string list;
}

type kernel_timing = {
  total_cycles : float;
  microseconds : float;
  n_waves : int;
  tbs_per_sm : int;
  occupancy_limiter : string;
  wave_cycles : float;
  tail_cycles : float;
  miss_rate : float;
  compute_utilization : float;
  wave_busy : wave_result option;
      (** raw busy breakdown of the representative wave (full wave when one
          exists, else the tail wave); [None] for an empty trace *)
}

val launch_overhead_cycles : float

val jitter : int -> float
(** Deterministic residual multiplier in [0.97, 1.03], keyed by schedule. *)

val bank_conflict_penalty : swizzle:bool -> tb_k:int -> elem_bytes:int -> float

(** {1 Wave planning} *)

type plan = {
  plan_occ : Occupancy.t;
  full_waves : int;
  remainder : int;        (** threadblocks in the partial tail wave *)
  full_cfg : config option;  (** [Some] iff [full_waves > 0] *)
  tail_cfg : config option;  (** [Some] iff [remainder > 0] *)
}

val plan : request -> (plan, Occupancy.failure) result
(** How the grid quantizes into full and tail waves, and the per-wave
    simulation configs. [run] and [Profile] both build on this, so a
    profiled wave replays exactly the machine state [run] timed. *)

val run : ?pool:Alcop_par.Pool.t -> request -> (kernel_timing, Occupancy.failure) result
(** Simulate a whole kernel launch. [Error] when the threadblock exceeds
    per-threadblock hardware resources (the schedule "fails to compile").
    When [pool] has 2+ workers and the launch has both a full and a tail
    wave, the two (independent) wave simulations run on separate domains;
    the reported timing is bit-identical to the sequential run.
    When an [Alcop_obs] sink is installed, emits gauges for the
    compute/DRAM/LLC/smem busy fractions ([timing.busy.*]), the
    critical-threadblock stall fractions of the representative wave
    ([timing.stall.<class>]) and the occupancy decision
    ([timing.tbs_per_sm], [timing.n_waves], [timing.miss_rate], plus a
    [timing.occupancy] point carrying the limiter). *)
