(* Pipeline observatory (doc/pipeview.md): per-stage buffer occupancy,
   prefetch-slack attribution and sync-wait accounting for one schedule.

   Replays the representative wave of a kernel with both simulator
   channels attached — the stall-attribution probe (whose contiguous
   per-threadblock segments telescope exactly to the threadblock's cycle
   count) and the opt-in pipeline probe (which reports the ready/start
   pair of every commit and wait, so positive prefetch slack is visible
   even though it produces no stall interval). The raw streams reduce to:

   - per (group, stage-slot) occupancy timelines: a stage slot is busy
     from the cycle its batch's last async load lands until the consumer
     wait that retires the batch completes;
   - per-wait prefetch slack: wait-start minus batch-land cycle, negative
     meaning the consumer stalled (exposed latency);
   - a five-term partition of the critical threadblock's cycles —
     compute, exposed (pipeline wait stalls), scoreboard (non-pipelined
     load stalls), sync (barriers, drains, pure-latency waits), issue —
     which, being a partition of contiguous segments, telescopes a
     latency delta between two schedules exactly;
   - a flat per-schedule feature record (cost-model features, logged per
     tuner trial).

   Group identity, protocol kind, declared stage count and the pass's
   per-stage byte footprint all ride in [Trace.program]'s group table, so
   no pipeline re-analysis happens here. *)

module Obs = Alcop_obs.Obs
module Json = Alcop_obs.Json
module Sinks = Alcop_obs.Sinks

type slack_sample = {
  sl_group : string;
  sl_stage : int;  (** stage slot = consumed batch mod stages *)
  sl_ordinal : int;  (** consumption ordinal of the wait *)
  sl_ready : float;
  sl_start : float;
  sl_slack : float;  (** [sl_start -. sl_ready]; negative = exposed *)
}

type occupancy_slot = {
  oc_stage : int;
  oc_intervals : (float * float) array;  (** merged, in time order *)
  oc_busy : float;  (** union measure of the intervals *)
}

type group_view = {
  gv_id : string;
  gv_stages : int;
  gv_synchronized : bool;
  gv_footprint_bytes : int;  (** pass-computed bytes per stage *)
  gv_high_water_bytes : int;  (** peak observed per-batch load bytes *)
  gv_slots : occupancy_slot array;  (** length [gv_stages] *)
  gv_duty : float;  (** mean busy/cycles over the slots *)
  gv_mean_slack : float;
  gv_min_slack : float;
  gv_exposed_cycles : float;  (** sum of negative slack magnitudes *)
  gv_n_waits : int;
}

(* The five bucket names, in display order. A fixed vocabulary so feature
   records from different schedules align column-wise. *)
let term_names = [ "compute"; "exposed"; "scoreboard"; "sync"; "issue" ]

type t = {
  pv_op : string;
  pv_schedule : string;
  pv_timing : Timing.kernel_timing;
  pv_wave_label : string;  (** ["full"] or ["tail"] *)
  pv_wave_cycles : float;  (** critical threadblock finish time *)
  pv_critical_tb : int;
  pv_terms : (string * float) list;  (** the five-term partition *)
  pv_groups : group_view list;  (** program group-table order *)
  pv_slacks : slack_sample list;  (** critical TB, program order *)
  pv_barrier_wait : float;  (** critical TB cycles waiting at barriers *)
  pv_drain_wait : float;  (** critical TB cycles in the final drain *)
}

(* --- recording --- *)

type raw = {
  mutable r_fills : Timing.pipe_event list;  (* reversed *)
  mutable r_advs : Timing.advance list;  (* reversed *)
  mutable r_flights : Timing.flight list;  (* reversed *)
}

let bucket_of (a : Timing.advance) =
  match a.Timing.adv_class with
  | Timing.Compute -> "compute"
  | Timing.Issue -> "issue"
  | Timing.Launch -> "issue"  (* never inside a wave *)
  | Timing.Sync_wait ->
    (match a.Timing.adv_group with Some _ -> "exposed" | None -> "sync")
  | Timing.Dram_bw | Timing.Llc_bw | Timing.Smem_port ->
    (match a.Timing.adv_group with Some _ -> "exposed" | None -> "scoreboard")

(* Union measure of [(start, stop)] intervals, merging as it goes.
   Intervals arrive in fill order; ring slots are reused sequentially so
   they are already near-sorted, but sort defensively. *)
let merge_intervals ivs =
  let ivs = List.sort compare ivs in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> (
      match acc with
      | (ps, pe) :: tl when s <= pe -> go ((ps, Float.max pe e) :: tl) rest
      | _ -> go ((s, e) :: acc) rest)
  in
  let merged = go [] ivs in
  let busy =
    List.fold_left (fun acc (s, e) -> acc +. Float.max 0.0 (e -. s)) 0.0 merged
  in
  (Array.of_list merged, busy)

let analyze ~op ~schedule ~(timing : Timing.kernel_timing) ~label
    (cfg : Timing.config) (p : Trace.program) =
  let raw = { r_fills = []; r_advs = []; r_flights = [] } in
  let probe =
    { Timing.on_advance = (fun a -> raw.r_advs <- a :: raw.r_advs);
      on_flight = (fun f -> raw.r_flights <- f :: raw.r_flights) }
  in
  let pipe e = raw.r_fills <- e :: raw.r_fills in
  ignore (Timing.simulate_program ~probe ~pipe cfg p);
  let pipes = List.rev raw.r_fills in
  let advs = List.rev raw.r_advs in
  let flights = List.rev raw.r_flights in
  (* critical threadblock = latest drain finish *)
  let finish = Array.make cfg.Timing.residents 0.0 in
  List.iter
    (function
      | Timing.Drain { pd_tb; pd_finish; _ } ->
        if pd_finish > finish.(pd_tb) then finish.(pd_tb) <- pd_finish
      | _ -> ())
    pipes;
  let crit = ref 0 in
  Array.iteri (fun i f -> if f > finish.(!crit) then crit := i) finish;
  let crit = !crit in
  let wave_cycles = finish.(crit) in
  (* five-term partition of the critical threadblock's segments *)
  let terms =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (a : Timing.advance) ->
        if a.Timing.adv_tb = crit then begin
          let b = bucket_of a in
          let prior = Option.value ~default:0.0 (Hashtbl.find_opt tbl b) in
          Hashtbl.replace tbl b
            (prior +. (a.Timing.adv_stop -. a.Timing.adv_start))
        end)
      advs;
    List.map
      (fun name -> (name, Option.value ~default:0.0 (Hashtbl.find_opt tbl name)))
      term_names
  in
  let ng = Array.length p.Trace.groups in
  let stages g = max 1 p.Trace.group_stages.(g) in
  (* per-group raw event pools, critical TB only *)
  let fills = Array.make ng [] in
  let consumes = Array.make ng [] in
  let barrier_wait = ref 0.0 and drain_wait = ref 0.0 in
  List.iter
    (function
      | Timing.Fill ({ pf_tb; pf_group; _ } as f) when pf_tb = crit ->
        fills.(pf_group) <- Timing.Fill f :: fills.(pf_group)
      | Timing.Consume ({ pc_tb; pc_group; _ } as c) when pc_tb = crit ->
        consumes.(pc_group) <- Timing.Consume c :: consumes.(pc_group)
      | Timing.Barrier_wait { pw_tb; pw_start; pw_finish } when pw_tb = crit ->
        barrier_wait := !barrier_wait +. (pw_finish -. pw_start)
      | Timing.Drain { pd_tb; pd_start; pd_finish } when pd_tb = crit ->
        drain_wait := !drain_wait +. (pd_finish -. pd_start)
      | _ -> ())
    pipes;
  (* observed high-water: peak per-batch async load byte sum *)
  let batch_bytes : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (f : Timing.flight) ->
      if f.Timing.fl_tb = crit && f.Timing.fl_async && f.Timing.fl_batch >= 0
      then
        match f.Timing.fl_group with
        | None -> ()
        | Some gid ->
          let rec idx i =
            if i >= ng then -1
            else if String.equal p.Trace.groups.(i) gid then i
            else idx (i + 1)
          in
          let g = idx 0 in
          if g >= 0 then begin
            let key = (g, f.Timing.fl_batch) in
            let prior =
              Option.value ~default:0 (Hashtbl.find_opt batch_bytes key)
            in
            Hashtbl.replace batch_bytes key (prior + f.Timing.fl_bytes)
          end)
    flights;
  let slacks = ref [] in
  let groups_rev = ref [] in
  for g = ng - 1 downto 0 do
    let st = stages g in
    let gfills = List.rev fills.(g) in
    let gcons = List.rev consumes.(g) in
    (* batch -> land cycle (fill time); batch -> retire cycle *)
    let land_of = Hashtbl.create 16 in
    List.iter
      (function
        | Timing.Fill { pf_batch; pf_commit; pf_ready; _ } ->
          Hashtbl.replace land_of pf_batch
            (if pf_ready > 0.0 then pf_ready else pf_commit)
        | _ -> ())
      gfills;
    let retire_of = Hashtbl.create 16 in
    let gslacks = ref [] in
    List.iter
      (function
        | Timing.Consume { pc_consumed; pc_start; pc_ready; pc_finish; pc_ordinal; _ }
          when pc_consumed >= 0 ->
          Hashtbl.replace retire_of pc_consumed pc_finish;
          gslacks :=
            { sl_group = p.Trace.groups.(g);
              sl_stage = pc_consumed mod st; sl_ordinal = pc_ordinal;
              sl_ready = pc_ready; sl_start = pc_start;
              sl_slack = pc_start -. pc_ready }
            :: !gslacks
        | _ -> ())
      gcons;
    let gslacks = List.rev !gslacks in
    (* occupancy: batch lives [land, retire], retire defaulting to the
       threadblock's finish for batches never consumed *)
    let slot_ivs = Array.make st [] in
    Hashtbl.iter
      (fun b land_t ->
        let retire =
          Option.value ~default:wave_cycles (Hashtbl.find_opt retire_of b)
        in
        let s = b mod st in
        if retire > land_t then
          slot_ivs.(s) <- (land_t, retire) :: slot_ivs.(s))
      land_of;
    let slots =
      Array.init st (fun s ->
          let ivs, busy = merge_intervals slot_ivs.(s) in
          { oc_stage = s; oc_intervals = ivs; oc_busy = busy })
    in
    let duty =
      if wave_cycles <= 0.0 || st = 0 then 0.0
      else
        Array.fold_left (fun a sl -> a +. sl.oc_busy) 0.0 slots
        /. (float_of_int st *. wave_cycles)
    in
    let n_waits = List.length gslacks in
    let mean_slack =
      if n_waits = 0 then 0.0
      else
        List.fold_left (fun a s -> a +. s.sl_slack) 0.0 gslacks
        /. float_of_int n_waits
    in
    let min_slack =
      List.fold_left (fun a s -> Float.min a s.sl_slack) infinity gslacks
    in
    let min_slack = if n_waits = 0 then 0.0 else min_slack in
    let exposed =
      List.fold_left
        (fun a s -> a +. Float.max 0.0 (-.s.sl_slack))
        0.0 gslacks
    in
    let high_water =
      Hashtbl.fold
        (fun (gg, _) b acc -> if gg = g then max acc b else acc)
        batch_bytes 0
    in
    slacks := gslacks @ !slacks;
    groups_rev :=
      { gv_id = p.Trace.groups.(g); gv_stages = st;
        gv_synchronized = p.Trace.group_sync.(g);
        gv_footprint_bytes = p.Trace.group_bytes.(g);
        gv_high_water_bytes = high_water; gv_slots = slots; gv_duty = duty;
        gv_mean_slack = mean_slack; gv_min_slack = min_slack;
        gv_exposed_cycles = exposed; gv_n_waits = n_waits }
      :: !groups_rev
  done;
  { pv_op = op; pv_schedule = schedule; pv_timing = timing;
    pv_wave_label = label; pv_wave_cycles = wave_cycles;
    pv_critical_tb = crit; pv_terms = terms; pv_groups = !groups_rev;
    pv_slacks = !slacks; pv_barrier_wait = !barrier_wait;
    pv_drain_wait = !drain_wait }

let run ?(op = "kernel") ?(schedule = "") (req : Timing.request) =
  match Timing.run req with
  | Error f -> Error f
  | Ok timing -> (
    match Timing.plan req with
    | Error f -> Error f
    | Ok pl ->
      let label, cfg =
        match pl.Timing.full_cfg, pl.Timing.tail_cfg with
        | Some c, _ -> ("full", Some c)
        | None, Some c -> ("tail", Some c)
        | None, None -> ("full", None)
      in
      (match cfg with
       | None ->
         Ok
           (analyze ~op ~schedule ~timing ~label
              { Timing.hw = req.Timing.hw; residents = 1; active_sms = 1;
                warps_per_tb = req.Timing.warps_per_tb; miss_rate = 0.0;
                smem_penalty = 1.0; issue_overhead = 0.0;
                barrier_groups = [] }
              req.Timing.program)
       | Some cfg -> Ok (analyze ~op ~schedule ~timing ~label cfg req.Timing.program)))

(* --- features --- *)

let term t name = Option.value ~default:0.0 (List.assoc_opt name t.pv_terms)

let features t =
  let c = t.pv_wave_cycles in
  let share x = if c > 0.0 then x /. c else 0.0 in
  let base =
    [ ("wave_cycles", c);
      ("compute_share", share (term t "compute"));
      ("exposed_cycles", term t "exposed");
      ("exposed_share", share (term t "exposed"));
      ("scoreboard_share", share (term t "scoreboard"));
      ("sync_share", share (term t "sync"));
      ("issue_share", share (term t "issue"));
      ("barrier_wait_cycles", t.pv_barrier_wait);
      ("drain_wait_cycles", t.pv_drain_wait) ]
  in
  let per_group =
    List.concat_map
      (fun g ->
        let k s = Printf.sprintf "%s.%s" s g.gv_id in
        [ (k "slack_mean", g.gv_mean_slack); (k "slack_min", g.gv_min_slack);
          (k "duty", g.gv_duty); (k "exposed", g.gv_exposed_cycles);
          ( k "high_water_frac",
            if g.gv_footprint_bytes > 0 then
              float_of_int g.gv_high_water_bytes
              /. float_of_int g.gv_footprint_bytes
            else 0.0 ) ])
      t.pv_groups
  in
  base @ per_group

(* --- schedule comparison ---

   Because the five terms partition the critical threadblock's contiguous
   stall segments, rounding each term to integer cycles and summing gives
   an exact integer telescoping: the reported total delta IS the sum of
   the reported term deltas, no residual. *)

type delta_term = {
  dt_name : string;
  dt_a : int;  (** rounded cycles in schedule A *)
  dt_b : int;
  dt_delta : int;  (** [dt_b - dt_a] *)
}

type comparison = {
  cmp_terms : delta_term list;
  cmp_total_a : int;  (** sum of the A terms *)
  cmp_total_b : int;
  cmp_total_delta : int;  (** [cmp_total_b - cmp_total_a], = sum of deltas *)
}

let compare_views a b =
  let r x = int_of_float (Float.round x) in
  let terms =
    List.map
      (fun name ->
        let ta = r (term a name) and tb = r (term b name) in
        { dt_name = name; dt_a = ta; dt_b = tb; dt_delta = tb - ta })
      term_names
  in
  let total_a = List.fold_left (fun acc d -> acc + d.dt_a) 0 terms in
  let total_b = List.fold_left (fun acc d -> acc + d.dt_b) 0 terms in
  { cmp_terms = terms; cmp_total_a = total_a; cmp_total_b = total_b;
    cmp_total_delta = total_b - total_a }

(* --- text rendering --- *)

let fmt_bytes b =
  if b >= 1 lsl 20 then Printf.sprintf "%.1fMiB" (float_of_int b /. 1048576.0)
  else if b >= 1024 then Printf.sprintf "%.1fKiB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%dB" b

let report t =
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  let tm = t.pv_timing in
  line "pipeline view: %s%s" t.pv_op
    (if String.equal t.pv_schedule "" then ""
     else "  [" ^ t.pv_schedule ^ "]");
  line "kernel: %.0f cycles (%.1f us), %d wave%s; %s wave critical TB %d = %.0f cycles"
    tm.Timing.total_cycles tm.Timing.microseconds tm.Timing.n_waves
    (if tm.Timing.n_waves = 1 then "" else "s")
    t.pv_wave_label t.pv_critical_tb t.pv_wave_cycles;
  line "cycle partition (critical TB):";
  List.iter
    (fun (name, cyc) ->
      line "  %-11s %12.0f cycles  %5.1f%%" name cyc
        (if t.pv_wave_cycles > 0.0 then 100.0 *. cyc /. t.pv_wave_cycles
         else 0.0))
    t.pv_terms;
  line "  sync detail: barriers %.0f, drain %.0f" t.pv_barrier_wait
    t.pv_drain_wait;
  if t.pv_groups <> [] then begin
    line "";
    line "pipeline groups:";
    List.iter
      (fun g ->
        line "  %s  (%s, %d stage%s, footprint %s/stage%s)" g.gv_id
          (if g.gv_synchronized then "scope-sync" else "register")
          g.gv_stages
          (if g.gv_stages = 1 then "" else "s")
          (fmt_bytes g.gv_footprint_bytes)
          (if g.gv_high_water_bytes > 0 then
             Printf.sprintf ", high-water %s" (fmt_bytes g.gv_high_water_bytes)
           else "");
        line
          "    duty %4.1f%% | waits %d | slack mean %+.0f min %+.0f | exposed %.0f cycles"
          (100.0 *. g.gv_duty) g.gv_n_waits g.gv_mean_slack g.gv_min_slack
          g.gv_exposed_cycles;
        Array.iter
          (fun sl ->
            line "    stage %d: busy %10.0f cycles (%4.1f%%), %d fill/drain interval%s"
              sl.oc_stage sl.oc_busy
              (if t.pv_wave_cycles > 0.0 then
                 100.0 *. sl.oc_busy /. t.pv_wave_cycles
               else 0.0)
              (Array.length sl.oc_intervals)
              (if Array.length sl.oc_intervals = 1 then "" else "s"))
          g.gv_slots)
      t.pv_groups
  end;
  Buffer.contents buf

let compare_report ~label_a ~label_b (a : t) (b : t) =
  let cmp = compare_views a b in
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "pipeline delta: %s  [%s -> %s]" a.pv_op label_a label_b;
  line "critical-TB cycles: %d -> %d  (delta %+d)" cmp.cmp_total_a
    cmp.cmp_total_b cmp.cmp_total_delta;
  line "%-11s %12s %12s %12s" "term" label_a label_b "delta";
  List.iter
    (fun d -> line "%-11s %12d %12d %+12d" d.dt_name d.dt_a d.dt_b d.dt_delta)
    cmp.cmp_terms;
  line "%-11s %12d %12d %+12d" "total" cmp.cmp_total_a cmp.cmp_total_b
    cmp.cmp_total_delta;
  let sum = List.fold_left (fun acc d -> acc + d.dt_delta) 0 cmp.cmp_terms in
  line "telescoping: sum of term deltas = %+d = total delta (exact)" sum;
  Buffer.contents buf

(* --- JSONL export --- *)

let events t =
  let feats = features t in
  let point =
    Obs.Point
      { name = "pipeview"; ts = 0.0;
        fields =
          [ ("op", Json.Str t.pv_op); ("schedule", Json.Str t.pv_schedule);
            ("wave", Json.Str t.pv_wave_label);
            ("critical_tb", Json.Int t.pv_critical_tb) ]
          @ List.map (fun (k, v) -> (k, Json.Float v)) feats }
  in
  let slack_points =
    List.map
      (fun s ->
        Obs.Point
          { name = "pipeview.slack"; ts = s.sl_start;
            fields =
              [ ("group", Json.Str s.sl_group);
                ("stage", Json.Int s.sl_stage);
                ("ordinal", Json.Int s.sl_ordinal);
                ("ready", Json.Float s.sl_ready);
                ("start", Json.Float s.sl_start);
                ("slack", Json.Float s.sl_slack) ] })
      t.pv_slacks
  in
  let occupancy_spans =
    List.concat_map
      (fun g ->
        Array.to_list g.gv_slots
        |> List.concat_map (fun sl ->
               Array.to_list sl.oc_intervals
               |> List.map (fun (s, e) ->
                      Obs.Span_end
                        { name =
                            Printf.sprintf "occupancy %s s%d" g.gv_id
                              sl.oc_stage;
                          ts = s; dur = e -. s; depth = 0;
                          fields =
                            [ ("group", Json.Str g.gv_id);
                              ("stage", Json.Int sl.oc_stage) ] })))
      t.pv_groups
  in
  (point :: slack_points) @ occupancy_spans

let emit_to (sink : Obs.sink) t =
  List.iter sink.Obs.emit (events t);
  sink.Obs.close ()

let write_jsonl path t = emit_to (Sinks.jsonl_file path) t
