(* Discrete-event timing simulator.

   One "wave" simulates the co-resident threadblocks of one SM replaying
   the kernel's event trace, contending for four resources: DRAM bandwidth
   (device-wide, divided by active SMs), LLC bandwidth (likewise), the SM's
   shared-memory throughput and the SM's tensor cores. Kernel latency is
   wave latency times the number of threadblock waves (the paper's
   threadblock-batch model, Sec. IV-A), plus the partial tail wave and a
   launch overhead.

   Blocking rules:
   - loads never block at issue; their completion times are assigned from
     the relevant bandwidth servers plus a round-trip latency;
   - a compute event blocks on all outstanding synchronous loads (the
     scoreboard) and on explicit pipeline waits that precede it;
   - a barrier blocks on every outstanding load of the threadblock;
   - Wait_oldest blocks until the oldest committed batch of its pipeline
     group has landed; Acquire/Release/Commit are bookkeeping.

   This simulator is deliberately richer than the analytical model of paper
   Table I (cache locality, wave quantization, bank conflicts, issue
   overhead, launch overhead, deterministic residual perturbation), so that
   learned cost models retain an edge over the analytical model alone
   (paper Sec. IV-C).

   Every advance of a threadblock's simulated clock can additionally be
   observed through a [probe]: the engine labels each interval with the
   stall class that caused it (the substrate of [Profile]), and reports
   each load's issue-to-land flight for in-flight timeline rendering. With
   no probe installed the bookkeeping degenerates to a handful of integer
   increments, so the tuner's hot path is unaffected. *)

type config = {
  hw : Alcop_hw.Hw_config.t;
  residents : int;
  active_sms : int;
  warps_per_tb : int;
  miss_rate : float;
  smem_penalty : float;
  issue_overhead : float;
  barrier_groups : string list;
      (** scope-synchronized pipeline groups: their waits are hoisting
          barriers like [Barrier] itself *)
}

type server = { mutable next_free : float; mutable busy : float }

let server () = { next_free = 0.0; busy = 0.0 }

(* [serve_ex] also exposes when the request entered service, i.e. how long
   it queued behind earlier requests — the bandwidth-contention signal the
   stall attribution needs. *)
let serve_ex srv ~now ~cost =
  let start = Float.max now srv.next_free in
  let finish = start +. cost in
  srv.next_free <- finish;
  srv.busy <- srv.busy +. cost;
  (start, finish)

let serve srv ~now ~cost = snd (serve_ex srv ~now ~cost)

(* --- stall attribution --- *)

type stall_class =
  | Compute
  | Dram_bw
  | Llc_bw
  | Smem_port
  | Sync_wait
  | Issue
  | Launch

let stall_class_name = function
  | Compute -> "compute"
  | Dram_bw -> "dram_bw"
  | Llc_bw -> "llc_bw"
  | Smem_port -> "smem_port"
  | Sync_wait -> "sync_wait"
  | Issue -> "issue"
  | Launch -> "launch"

let all_stall_classes =
  [ Compute; Dram_bw; Llc_bw; Smem_port; Sync_wait; Issue; Launch ]

(* Cause composition of a set of outstanding loads: how much of their
   completion time went to DRAM service/queueing, LLC service/queueing,
   shared-memory throughput, and fixed round-trip latency. When a consumer
   stalls on those loads the dominant component classifies the stall:
   queue-heavy loads mean the stall is a bandwidth problem (more pipeline
   stages will NOT hide it), latency-heavy loads mean it is hideable
   latency (the Fig. 1b story). *)
type mix = {
  mutable mx_dram : float;
  mutable mx_llc : float;
  mutable mx_smem : float;
  mutable mx_lat : float;
}

let mix () = { mx_dram = 0.0; mx_llc = 0.0; mx_smem = 0.0; mx_lat = 0.0 }

let mix_reset m =
  m.mx_dram <- 0.0;
  m.mx_llc <- 0.0;
  m.mx_smem <- 0.0;
  m.mx_lat <- 0.0

let mix_copy m =
  { mx_dram = m.mx_dram; mx_llc = m.mx_llc; mx_smem = m.mx_smem;
    mx_lat = m.mx_lat }

let mix_add dst src =
  dst.mx_dram <- dst.mx_dram +. src.mx_dram;
  dst.mx_llc <- dst.mx_llc +. src.mx_llc;
  dst.mx_smem <- dst.mx_smem +. src.mx_smem;
  dst.mx_lat <- dst.mx_lat +. src.mx_lat

let dominant m =
  if m.mx_dram > 0.0 && m.mx_dram >= m.mx_llc && m.mx_dram >= m.mx_smem
     && m.mx_dram >= m.mx_lat
  then Dram_bw
  else if m.mx_llc > 0.0 && m.mx_llc >= m.mx_smem && m.mx_llc >= m.mx_lat then
    Llc_bw
  else if m.mx_smem > 0.0 && m.mx_smem >= m.mx_lat then Smem_port
  else Sync_wait

type advance = {
  adv_tb : int;
  adv_class : stall_class;
  adv_group : string option;
      (** the pipeline group whose wait caused the interval, if any *)
  adv_ordinal : int;
      (** ordinal of the consumed batch within its group (stage slot =
          ordinal mod stages); -1 for intervals not tied to a batch *)
  adv_start : float;
  adv_stop : float;
}

type flight = {
  fl_tb : int;
  fl_group : string option;
  fl_batch : int;  (** batch ordinal within the group; -1 when ungrouped *)
  fl_async : bool;
  fl_level : Trace.level;
  fl_bytes : int;
  fl_issue : float;
  fl_land : float;
}

type probe = {
  on_advance : advance -> unit;
  on_flight : flight -> unit;
}

type pipe_acct = {
  mutable open_batch : float;
  mutable committed : int;  (** batches committed so far *)
  mutable taken : int;  (** batches consumed by waits so far *)
  open_mix : mix;
  batches : (float * mix) Queue.t;
}

type tb = {
  mutable time : float;
  mutable cursor : int;
  mutable sync_recent : float;
      (** completion of synchronous loads issued since the last compute *)
  mutable sync_due : float;
      (** completion a compute event must wait for: synchronous loads up to
          the previous compute. The one-iteration lookahead models the
          instruction scheduler hoisting unrolled register loads above the
          preceding iteration's math (implicit register double-buffering of
          real compiled kernels), without which unpipelined baselines are
          unrealistically slow. *)
  mutable all_outstanding : float;
  mutable at_boundary : bool;
      (** a barrier or synchronized wait was just crossed: the next compute
          cannot benefit from hoisted loads (nothing moves above a barrier) *)
  sync_mix : mix;  (** cause composition behind [sync_recent] *)
  due_mix : mix;  (** cause composition behind [sync_due] *)
  pipes : (string, pipe_acct) Hashtbl.t;
}

type wave_result = {
  cycles : float;
  compute_busy : float;
  dram_busy : float;
  llc_busy : float;
  smem_busy : float;
}

let pipe_of tb gid =
  match Hashtbl.find_opt tb.pipes gid with
  | Some p -> p
  | None ->
    let p =
      { open_batch = 0.0; committed = 0; taken = 0; open_mix = mix ();
        batches = Queue.create () }
    in
    Hashtbl.replace tb.pipes gid p;
    p

let simulate_wave ?probe (cfg : config) (trace : Trace.event array) =
  let hw = cfg.hw in
  let active = float_of_int (max 1 cfg.active_sms) in
  let dram = server () and llc = server () and smem = server ()
  and compute = server () in
  let dram_rate = hw.Alcop_hw.Hw_config.dram_bytes_per_cycle /. active in
  let llc_rate = hw.Alcop_hw.Hw_config.llc_bytes_per_cycle /. active in
  let smem_rate = hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm in
  let total_warps = cfg.residents * cfg.warps_per_tb in
  (* Four scheduler partitions per SM: tensor cores reach peak only with at
     least four resident warps. *)
  let util = Float.min 1.0 (float_of_int total_warps /. 4.0) in
  let compute_rate =
    float_of_int hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle *. util
  in
  let load_latency =
    hw.Alcop_hw.Hw_config.llc_latency
    +. (cfg.miss_rate
        *. (hw.Alcop_hw.Hw_config.dram_latency -. hw.Alcop_hw.Hw_config.llc_latency))
  in
  let tracking = Option.is_some probe in
  let att i cls group ordinal start stop =
    match probe with
    | Some p when stop > start ->
      p.on_advance
        { adv_tb = i; adv_class = cls; adv_group = group;
          adv_ordinal = ordinal; adv_start = start; adv_stop = stop }
    | _ -> ()
  in
  let tbs =
    Array.init cfg.residents (fun _ ->
        { time = 0.0; cursor = 0; sync_recent = 0.0; sync_due = 0.0;
          all_outstanding = 0.0; at_boundary = false; sync_mix = mix ();
          due_mix = mix (); pipes = Hashtbl.create 4 })
  in
  let n = Array.length trace in
  let step i tb =
    let t0 = tb.time in
    let now = t0 +. cfg.issue_overhead in
    att i Issue None (-1) t0 now;
    (match trace.(tb.cursor) with
     | Trace.Load { level; bytes; async; group } ->
       let b = float_of_int bytes in
       let lmix = if tracking then Some (mix ()) else None in
       let completion =
         match level with
         | Trace.From_global ->
           let lf = serve llc ~now ~cost:(b /. llc_rate) in
           let df = serve dram ~now ~cost:(b *. cfg.miss_rate /. dram_rate) in
           (match lmix with
            | Some m ->
              m.mx_llc <- Float.max 0.0 (lf -. now);
              m.mx_dram <- Float.max 0.0 (df -. now);
              m.mx_lat <- load_latency
            | None -> ());
           Float.max lf df +. load_latency
         | Trace.From_shared ->
           let sf = serve smem ~now ~cost:(b *. cfg.smem_penalty /. smem_rate) in
           (match lmix with
            | Some m ->
              m.mx_smem <- Float.max 0.0 (sf -. now);
              m.mx_lat <- hw.Alcop_hw.Hw_config.smem_latency
            | None -> ());
           sf +. hw.Alcop_hw.Hw_config.smem_latency
       in
       tb.all_outstanding <- Float.max tb.all_outstanding completion;
       let batch_ord = ref (-1) in
       (if async then begin
          match group with
          | Some gid ->
            let p = pipe_of tb gid in
            p.open_batch <- Float.max p.open_batch completion;
            batch_ord := p.committed;
            (match lmix with Some m -> mix_add p.open_mix m | None -> ())
          | None ->
            tb.sync_recent <- Float.max tb.sync_recent completion;
            (match lmix with Some m -> mix_add tb.sync_mix m | None -> ())
        end
        else begin
          tb.sync_recent <- Float.max tb.sync_recent completion;
          (match lmix with Some m -> mix_add tb.sync_mix m | None -> ())
        end);
       (match probe with
        | Some p ->
          p.on_flight
            { fl_tb = i; fl_group = group; fl_batch = !batch_ord;
              fl_async = async; fl_level = level; fl_bytes = bytes;
              fl_issue = now; fl_land = completion }
        | None -> ());
       tb.time <- now
     | Trace.Store { bytes } ->
       let completion =
         serve dram ~now ~cost:(float_of_int bytes /. dram_rate)
         +. hw.Alcop_hw.Hw_config.dram_write_latency
       in
       tb.all_outstanding <- Float.max tb.all_outstanding completion;
       tb.time <- now
     | Trace.Commit gid ->
       let p = pipe_of tb gid in
       Queue.push
         (p.open_batch, if tracking then mix_copy p.open_mix else p.open_mix)
         p.batches;
       p.open_batch <- 0.0;
       p.committed <- p.committed + 1;
       if tracking then mix_reset p.open_mix;
       tb.time <- now
     | Trace.Wait_oldest gid ->
       let p = pipe_of tb gid in
       let ready, rmix =
         match Queue.take_opt p.batches with
         | Some (c, m) -> (c, m)
         | None -> (0.0, tb.due_mix)
       in
       let ordinal = p.taken in
       p.taken <- p.taken + 1;
       if List.mem gid cfg.barrier_groups then tb.at_boundary <- true;
       let t = Float.max now ready in
       att i (dominant rmix) (Some gid) ordinal now t;
       tb.time <- t
     | Trace.Acquire _ | Trace.Release _ ->
       (* Stage-slot accounting has no timing effect in a lockstep
          threadblock model: releases precede acquires in program order. *)
       tb.time <- now
     | Trace.Barrier ->
       tb.at_boundary <- true;
       let t = Float.max now tb.all_outstanding in
       att i Sync_wait None (-1) now t;
       tb.time <- t
     | Trace.Compute { flops } ->
       if tb.at_boundary then begin
         (* loads issued since the boundary could not be hoisted above it *)
         tb.sync_due <- Float.max tb.sync_due tb.sync_recent;
         tb.sync_recent <- 0.0;
         if tracking then begin
           mix_add tb.due_mix tb.sync_mix;
           mix_reset tb.sync_mix
         end;
         tb.at_boundary <- false
       end;
       let start = Float.max now tb.sync_due in
       att i (dominant tb.due_mix) None (-1) now start;
       tb.sync_due <- Float.max tb.sync_due tb.sync_recent;
       tb.sync_recent <- 0.0;
       if tracking then begin
         mix_add tb.due_mix tb.sync_mix;
         mix_reset tb.sync_mix
       end;
       let finish = serve compute ~now:start ~cost:(float_of_int flops /. compute_rate) in
       att i Compute None (-1) start finish;
       tb.time <- finish);
    tb.cursor <- tb.cursor + 1;
    if tb.cursor >= n then begin
      (* drain: the epilogue waits for every outstanding store/load *)
      let t = Float.max tb.time tb.all_outstanding in
      att i Sync_wait None (-1) tb.time t;
      tb.time <- t
    end
  in
  (* Advance the earliest threadblock one event at a time so server queues
     interleave in global time order. *)
  let rec drive () =
    let best = ref (-1) in
    Array.iteri
      (fun i tb ->
        if tb.cursor < n && (!best < 0 || tb.time < tbs.(!best).time) then
          best := i)
      tbs;
    if !best >= 0 then begin
      step !best tbs.(!best);
      drive ()
    end
  in
  if n > 0 then drive ();
  let cycles = Array.fold_left (fun acc tb -> Float.max acc tb.time) 0.0 tbs in
  { cycles; compute_busy = compute.busy; dram_busy = dram.busy;
    llc_busy = llc.busy; smem_busy = smem.busy }

(* --- Whole-kernel latency --- *)

type request = {
  hw : Alcop_hw.Hw_config.t;
  trace : Trace.event array;
  total_tbs : int;
  warps_per_tb : int;
  smem_per_tb : int;
  regs_per_thread : int;
  grid_m : int;
  grid_n : int;
  grid_z : int;
  tb_m : int;
  tb_n : int;
  tb_k : int;
  elem_bytes : int;
  swizzle : bool;
  jitter_key : int;
  barrier_groups : string list;
}

type kernel_timing = {
  total_cycles : float;
  microseconds : float;
  n_waves : int;
  tbs_per_sm : int;
  occupancy_limiter : string;
  wave_cycles : float;
  tail_cycles : float;
  miss_rate : float;
  compute_utilization : float;  (** busy fraction of tensor cores, full wave *)
  wave_busy : wave_result option;
      (** raw busy breakdown of the representative wave (full wave when one
          exists, else the tail wave); [None] for an empty trace *)
}

let launch_overhead_cycles = 2200.0

(* Deterministic residual: hardware effects outside the model (clock
   behaviour, instruction scheduling, partition camping) folded into a
   +-3% multiplier keyed by the schedule. *)
let jitter key =
  let h = Hashtbl.hash (key, 0x5DEECE66D) land 0xFFFF in
  1.0 +. (0.06 *. ((float_of_int h /. 65535.0) -. 0.5))

let bank_conflict_penalty ~swizzle ~tb_k ~elem_bytes =
  if swizzle then 1.0
  else begin
    (* Without swizzling, power-of-two row strides land warps on the same
       banks; worst when the row stride is a multiple of the 128-byte bank
       window. *)
    let row = tb_k * elem_bytes in
    if row mod 128 = 0 then 3.0 else 2.0
  end

(* The wave plan: how the grid quantizes into full and tail waves, and the
   per-wave simulation configs. Shared by [run] and the [Profile] recorder
   so both simulate exactly the same machine states. *)
type plan = {
  plan_occ : Occupancy.t;
  full_waves : int;
  remainder : int;  (** threadblocks in the partial tail wave *)
  full_cfg : config option;  (** [Some] iff [full_waves > 0] *)
  tail_cfg : config option;  (** [Some] iff [remainder > 0] *)
}

let plan (req : request) =
  let hw = req.hw in
  match
    Occupancy.compute hw ~smem_per_tb:req.smem_per_tb
      ~warps_per_tb:req.warps_per_tb ~regs_per_thread:req.regs_per_thread
  with
  | Error f -> Error f
  | Ok occ ->
    let slots = occ.Occupancy.tbs_per_sm * hw.Alcop_hw.Hw_config.num_sms in
    let full_waves = req.total_tbs / slots in
    let rem = req.total_tbs mod slots in
    let wave_cfg residents active =
      let loc =
        Locality.compute hw ~grid_m:req.grid_m ~grid_n:req.grid_n
          ~grid_z:req.grid_z ~tb_m:req.tb_m ~tb_n:req.tb_n ~tb_k:req.tb_k
          ~elem_bytes:req.elem_bytes ~resident_tbs:(residents * active)
      in
      { hw; residents; active_sms = active; warps_per_tb = req.warps_per_tb;
        miss_rate = loc.Locality.miss_rate;
        smem_penalty =
          bank_conflict_penalty ~swizzle:req.swizzle ~tb_k:req.tb_k
            ~elem_bytes:req.elem_bytes;
        issue_overhead = 4.0;
        barrier_groups = req.barrier_groups }
    in
    let full_cfg =
      if full_waves > 0 then
        Some (wave_cfg occ.Occupancy.tbs_per_sm hw.Alcop_hw.Hw_config.num_sms)
      else None
    in
    let tail_cfg =
      if rem > 0 then begin
        let active = min hw.Alcop_hw.Hw_config.num_sms rem in
        Some (wave_cfg ((rem + active - 1) / active) active)
      end
      else None
    in
    Ok { plan_occ = occ; full_waves; remainder = rem; full_cfg; tail_cfg }

(* A cheap bucket-only recorder: per-threadblock stall-class totals of one
   simulated wave, reported for the slowest (critical-path) threadblock.
   [run] uses it to publish [timing.stall.*] gauges when observability is
   on; [Profile] keeps full timelines instead. *)
let critical_stall_fractions wave_result advances =
  let totals : (int * stall_class, float) Hashtbl.t = Hashtbl.create 16 in
  let ends : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let key = (a.adv_tb, a.adv_class) in
      let prior = Option.value ~default:0.0 (Hashtbl.find_opt totals key) in
      Hashtbl.replace totals key (prior +. (a.adv_stop -. a.adv_start));
      let e = Option.value ~default:0.0 (Hashtbl.find_opt ends a.adv_tb) in
      Hashtbl.replace ends a.adv_tb (Float.max e a.adv_stop))
    advances;
  let critical =
    Hashtbl.fold
      (fun tb e (bt, be) -> if e > be then (tb, e) else (bt, be))
      ends (0, 0.0)
    |> fst
  in
  if wave_result.cycles <= 0.0 then []
  else
    List.filter_map
      (fun cls ->
        match Hashtbl.find_opt totals (critical, cls) with
        | Some c -> Some (cls, c /. wave_result.cycles)
        | None -> Some (cls, 0.0))
      all_stall_classes

let run ?pool (req : request) =
  let hw = req.hw in
  match plan req with
  | Error f -> Error f
  | Ok pl ->
    let occ = pl.plan_occ in
    let full_waves = pl.full_waves and rem = pl.remainder in
    (* When observability is on, attach a bucket recorder to the
       representative wave (the full wave when one exists, else the tail)
       so the stall breakdown rides along at no extra simulation cost. *)
    let advances : advance list ref = ref [] in
    let gauge_probe =
      if Alcop_obs.Obs.enabled () then
        Some
          { on_advance = (fun a -> advances := a :: !advances);
            on_flight = (fun _ -> ()) }
      else None
    in
    let representative_is_full = pl.full_cfg <> None in
    let full_probe = if representative_is_full then gauge_probe else None in
    let tail_probe = if representative_is_full then None else gauge_probe in
    (* The full and tail waves are independent simulations; with a pool of
       2+ workers run them on two domains. Only the representative wave
       carries the probe, so its [advances] ref is touched by exactly one
       worker and read after the join — and the combination below is in
       fixed (full, tail) order, so the result is bit-identical to the
       sequential pair. *)
    let full_result, tail_result =
      match (pool, pl.full_cfg, pl.tail_cfg) with
      | Some p, Some full_cfg, Some tail_cfg when Alcop_par.Pool.jobs p > 1 ->
        (match
           Alcop_par.Pool.map p
             (fun (cfg, probe) -> simulate_wave ?probe cfg req.trace)
             [ (full_cfg, full_probe); (tail_cfg, tail_probe) ]
         with
        | [ fr; tr ] -> (Some (full_cfg, fr), Some (tail_cfg, tr))
        | _ -> assert false)
      | _ ->
        ( Option.map
            (fun cfg -> (cfg, simulate_wave ?probe:full_probe cfg req.trace))
            pl.full_cfg,
          Option.map
            (fun cfg -> (cfg, simulate_wave ?probe:tail_probe cfg req.trace))
            pl.tail_cfg )
    in
    let wave_cycles =
      match full_result with Some (_, r) -> r.cycles | None -> 0.0
    in
    let tail_cycles =
      match tail_result with Some (_, r) -> r.cycles | None -> 0.0
    in
    let body = (float_of_int full_waves *. wave_cycles) +. tail_cycles in
    let total_cycles =
      ((body +. launch_overhead_cycles) *. jitter req.jitter_key)
    in
    let compute_utilization =
      match full_result, tail_result with
      | Some (_, r), _ | None, Some (_, r) ->
        if r.cycles > 0.0 then Float.min 1.0 (r.compute_busy /. r.cycles)
        else 0.0
      | None, None -> 0.0
    in
    let n_waves = full_waves + (if rem > 0 then 1 else 0) in
    let miss_rate =
      match full_result, tail_result with
      | Some (cfg, _), _ | None, Some (cfg, _) -> cfg.miss_rate
      | None, None -> 0.0
    in
    let wave_busy =
      match full_result, tail_result with
      | Some (_, r), _ | None, Some (_, r) -> Some r
      | None, None -> None
    in
    (* Surface the representative wave's busy breakdown, the stall
       attribution and the occupancy decision as telemetry — this is
       exactly the data behind the paper's ablation figures, and it is
       free when no sink is installed. *)
    if Alcop_obs.Obs.enabled () then begin
      let open Alcop_obs in
      (match wave_busy with
       | Some r when r.cycles > 0.0 ->
         let frac busy = Float.min 1.0 (busy /. r.cycles) in
         Obs.gauge "timing.busy.compute" (frac r.compute_busy);
         Obs.gauge "timing.busy.dram" (frac r.dram_busy);
         Obs.gauge "timing.busy.llc" (frac r.llc_busy);
         Obs.gauge "timing.busy.smem" (frac r.smem_busy);
         List.iter
           (fun (cls, f) ->
             if cls <> Launch then
               Obs.gauge ("timing.stall." ^ stall_class_name cls) f)
           (critical_stall_fractions r !advances)
       | _ -> ());
      Obs.gauge "timing.tbs_per_sm" (float_of_int occ.Occupancy.tbs_per_sm);
      Obs.gauge "timing.n_waves" (float_of_int n_waves);
      Obs.gauge "timing.miss_rate" miss_rate;
      (* histogram, not gauge: across a tuning sweep or batch compile the
         distribution of kernel latencies is the interesting object *)
      Obs.observe "timing.kernel.cycles" total_cycles;
      Obs.point "timing.occupancy"
        [ ("limiter", Json.Str occ.Occupancy.limiter);
          ("tbs_per_sm", Json.Int occ.Occupancy.tbs_per_sm);
          ("n_waves", Json.Int n_waves) ]
    end;
    Ok
      { total_cycles;
        microseconds = Alcop_hw.Hw_config.cycles_to_us hw total_cycles;
        n_waves; tbs_per_sm = occ.Occupancy.tbs_per_sm;
        occupancy_limiter = occ.Occupancy.limiter; wave_cycles; tail_cycles;
        miss_rate; compute_utilization; wave_busy }
