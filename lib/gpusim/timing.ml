(* Discrete-event timing simulator.

   One "wave" simulates the co-resident threadblocks of one SM replaying
   the kernel's event trace, contending for four resources: DRAM bandwidth
   (device-wide, divided by active SMs), LLC bandwidth (likewise), the SM's
   shared-memory throughput and the SM's tensor cores. Kernel latency is
   wave latency times the number of threadblock waves (the paper's
   threadblock-batch model, Sec. IV-A), plus the partial tail wave and a
   launch overhead.

   Blocking rules:
   - loads never block at issue; their completion times are assigned from
     the relevant bandwidth servers plus a round-trip latency;
   - a compute event blocks on all outstanding synchronous loads (the
     scoreboard) and on explicit pipeline waits that precede it;
   - a barrier blocks on every outstanding load of the threadblock;
   - Wait_oldest blocks until the oldest committed batch of its pipeline
     group has landed; Acquire/Release/Commit are bookkeeping.

   This simulator is deliberately richer than the analytical model of paper
   Table I (cache locality, wave quantization, bank conflicts, issue
   overhead, launch overhead, deterministic residual perturbation), so that
   learned cost models retain an edge over the analytical model alone
   (paper Sec. IV-C). *)

type config = {
  hw : Alcop_hw.Hw_config.t;
  residents : int;
  active_sms : int;
  warps_per_tb : int;
  miss_rate : float;
  smem_penalty : float;
  issue_overhead : float;
  barrier_groups : string list;
      (** scope-synchronized pipeline groups: their waits are hoisting
          barriers like [Barrier] itself *)
}

type server = { mutable next_free : float; mutable busy : float }

let server () = { next_free = 0.0; busy = 0.0 }

let serve srv ~now ~cost =
  let start = Float.max now srv.next_free in
  let finish = start +. cost in
  srv.next_free <- finish;
  srv.busy <- srv.busy +. cost;
  finish

type pipe_acct = {
  mutable open_batch : float;
  batches : float Queue.t;
}

type tb = {
  mutable time : float;
  mutable cursor : int;
  mutable sync_recent : float;
      (** completion of synchronous loads issued since the last compute *)
  mutable sync_due : float;
      (** completion a compute event must wait for: synchronous loads up to
          the previous compute. The one-iteration lookahead models the
          instruction scheduler hoisting unrolled register loads above the
          preceding iteration's math (implicit register double-buffering of
          real compiled kernels), without which unpipelined baselines are
          unrealistically slow. *)
  mutable all_outstanding : float;
  mutable at_boundary : bool;
      (** a barrier or synchronized wait was just crossed: the next compute
          cannot benefit from hoisted loads (nothing moves above a barrier) *)
  pipes : (string, pipe_acct) Hashtbl.t;
}

type wave_result = {
  cycles : float;
  compute_busy : float;
  dram_busy : float;
  llc_busy : float;
  smem_busy : float;
}

let pipe_of tb gid =
  match Hashtbl.find_opt tb.pipes gid with
  | Some p -> p
  | None ->
    let p = { open_batch = 0.0; batches = Queue.create () } in
    Hashtbl.replace tb.pipes gid p;
    p

let simulate_wave (cfg : config) (trace : Trace.event array) =
  let hw = cfg.hw in
  let active = float_of_int (max 1 cfg.active_sms) in
  let dram = server () and llc = server () and smem = server ()
  and compute = server () in
  let dram_rate = hw.Alcop_hw.Hw_config.dram_bytes_per_cycle /. active in
  let llc_rate = hw.Alcop_hw.Hw_config.llc_bytes_per_cycle /. active in
  let smem_rate = hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm in
  let total_warps = cfg.residents * cfg.warps_per_tb in
  (* Four scheduler partitions per SM: tensor cores reach peak only with at
     least four resident warps. *)
  let util = Float.min 1.0 (float_of_int total_warps /. 4.0) in
  let compute_rate =
    float_of_int hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle *. util
  in
  let load_latency =
    hw.Alcop_hw.Hw_config.llc_latency
    +. (cfg.miss_rate
        *. (hw.Alcop_hw.Hw_config.dram_latency -. hw.Alcop_hw.Hw_config.llc_latency))
  in
  let tbs =
    Array.init cfg.residents (fun _ ->
        { time = 0.0; cursor = 0; sync_recent = 0.0; sync_due = 0.0;
          all_outstanding = 0.0; at_boundary = false; pipes = Hashtbl.create 4 })
  in
  let n = Array.length trace in
  let step tb =
    let now = tb.time +. cfg.issue_overhead in
    (match trace.(tb.cursor) with
     | Trace.Load { level; bytes; async; group } ->
       let b = float_of_int bytes in
       let completion =
         match level with
         | Trace.From_global ->
           let l = serve llc ~now ~cost:(b /. llc_rate) in
           let d = serve dram ~now ~cost:(b *. cfg.miss_rate /. dram_rate) in
           Float.max l d +. load_latency
         | Trace.From_shared ->
           serve smem ~now ~cost:(b *. cfg.smem_penalty /. smem_rate)
           +. hw.Alcop_hw.Hw_config.smem_latency
       in
       tb.all_outstanding <- Float.max tb.all_outstanding completion;
       if async then begin
         match group with
         | Some gid ->
           let p = pipe_of tb gid in
           p.open_batch <- Float.max p.open_batch completion
         | None -> tb.sync_recent <- Float.max tb.sync_recent completion
       end
       else tb.sync_recent <- Float.max tb.sync_recent completion;
       tb.time <- now
     | Trace.Store { bytes } ->
       let completion =
         serve dram ~now ~cost:(float_of_int bytes /. dram_rate)
         +. hw.Alcop_hw.Hw_config.dram_write_latency
       in
       tb.all_outstanding <- Float.max tb.all_outstanding completion;
       tb.time <- now
     | Trace.Commit gid ->
       let p = pipe_of tb gid in
       Queue.push p.open_batch p.batches;
       p.open_batch <- 0.0;
       tb.time <- now
     | Trace.Wait_oldest gid ->
       let p = pipe_of tb gid in
       let ready = match Queue.take_opt p.batches with Some c -> c | None -> 0.0 in
       if List.mem gid cfg.barrier_groups then tb.at_boundary <- true;
       tb.time <- Float.max now ready
     | Trace.Acquire _ | Trace.Release _ ->
       (* Stage-slot accounting has no timing effect in a lockstep
          threadblock model: releases precede acquires in program order. *)
       tb.time <- now
     | Trace.Barrier ->
       tb.at_boundary <- true;
       tb.time <- Float.max now tb.all_outstanding
     | Trace.Compute { flops } ->
       if tb.at_boundary then begin
         (* loads issued since the boundary could not be hoisted above it *)
         tb.sync_due <- Float.max tb.sync_due tb.sync_recent;
         tb.sync_recent <- 0.0;
         tb.at_boundary <- false
       end;
       let start = Float.max now tb.sync_due in
       tb.sync_due <- Float.max tb.sync_due tb.sync_recent;
       tb.sync_recent <- 0.0;
       tb.time <- serve compute ~now:start ~cost:(float_of_int flops /. compute_rate));
    tb.cursor <- tb.cursor + 1;
    if tb.cursor >= n then tb.time <- Float.max tb.time tb.all_outstanding
  in
  (* Advance the earliest threadblock one event at a time so server queues
     interleave in global time order. *)
  let rec drive () =
    let best = ref (-1) in
    Array.iteri
      (fun i tb ->
        if tb.cursor < n && (!best < 0 || tb.time < tbs.(!best).time) then
          best := i)
      tbs;
    if !best >= 0 then begin
      step tbs.(!best);
      drive ()
    end
  in
  if n > 0 then drive ();
  let cycles = Array.fold_left (fun acc tb -> Float.max acc tb.time) 0.0 tbs in
  { cycles; compute_busy = compute.busy; dram_busy = dram.busy;
    llc_busy = llc.busy; smem_busy = smem.busy }

(* --- Whole-kernel latency --- *)

type request = {
  hw : Alcop_hw.Hw_config.t;
  trace : Trace.event array;
  total_tbs : int;
  warps_per_tb : int;
  smem_per_tb : int;
  regs_per_thread : int;
  grid_m : int;
  grid_n : int;
  grid_z : int;
  tb_m : int;
  tb_n : int;
  tb_k : int;
  elem_bytes : int;
  swizzle : bool;
  jitter_key : int;
  barrier_groups : string list;
}

type kernel_timing = {
  total_cycles : float;
  microseconds : float;
  n_waves : int;
  tbs_per_sm : int;
  occupancy_limiter : string;
  wave_cycles : float;
  tail_cycles : float;
  miss_rate : float;
  compute_utilization : float;  (** busy fraction of tensor cores, full wave *)
  wave_busy : wave_result option;
      (** raw busy breakdown of the representative wave (full wave when one
          exists, else the tail wave); [None] for an empty trace *)
}

let launch_overhead_cycles = 2200.0

(* Deterministic residual: hardware effects outside the model (clock
   behaviour, instruction scheduling, partition camping) folded into a
   +-3% multiplier keyed by the schedule. *)
let jitter key =
  let h = Hashtbl.hash (key, 0x5DEECE66D) land 0xFFFF in
  1.0 +. (0.06 *. ((float_of_int h /. 65535.0) -. 0.5))

let bank_conflict_penalty ~swizzle ~tb_k ~elem_bytes =
  if swizzle then 1.0
  else begin
    (* Without swizzling, power-of-two row strides land warps on the same
       banks; worst when the row stride is a multiple of the 128-byte bank
       window. *)
    let row = tb_k * elem_bytes in
    if row mod 128 = 0 then 3.0 else 2.0
  end

let run (req : request) =
  let hw = req.hw in
  match
    Occupancy.compute hw ~smem_per_tb:req.smem_per_tb
      ~warps_per_tb:req.warps_per_tb ~regs_per_thread:req.regs_per_thread
  with
  | Error f -> Error f
  | Ok occ ->
    let slots = occ.Occupancy.tbs_per_sm * hw.Alcop_hw.Hw_config.num_sms in
    let full_waves = req.total_tbs / slots in
    let rem = req.total_tbs mod slots in
    let wave_cfg residents active =
      let loc =
        Locality.compute hw ~grid_m:req.grid_m ~grid_n:req.grid_n
          ~grid_z:req.grid_z ~tb_m:req.tb_m ~tb_n:req.tb_n ~tb_k:req.tb_k
          ~elem_bytes:req.elem_bytes ~resident_tbs:(residents * active)
      in
      ( { hw; residents; active_sms = active; warps_per_tb = req.warps_per_tb;
          miss_rate = loc.Locality.miss_rate;
          smem_penalty =
            bank_conflict_penalty ~swizzle:req.swizzle ~tb_k:req.tb_k
              ~elem_bytes:req.elem_bytes;
          issue_overhead = 4.0;
          barrier_groups = req.barrier_groups },
        loc )
    in
    let full_result =
      if full_waves > 0 then begin
        let cfg, _ = wave_cfg occ.Occupancy.tbs_per_sm hw.Alcop_hw.Hw_config.num_sms in
        Some (cfg, simulate_wave cfg req.trace)
      end
      else None
    in
    let tail_result =
      if rem > 0 then begin
        let active = min hw.Alcop_hw.Hw_config.num_sms rem in
        let residents = (rem + active - 1) / active in
        let cfg, _ = wave_cfg residents active in
        Some (cfg, simulate_wave cfg req.trace)
      end
      else None
    in
    let wave_cycles =
      match full_result with Some (_, r) -> r.cycles | None -> 0.0
    in
    let tail_cycles =
      match tail_result with Some (_, r) -> r.cycles | None -> 0.0
    in
    let body = (float_of_int full_waves *. wave_cycles) +. tail_cycles in
    let total_cycles =
      ((body +. launch_overhead_cycles) *. jitter req.jitter_key)
    in
    let compute_utilization =
      match full_result, tail_result with
      | Some (_, r), _ | None, Some (_, r) ->
        if r.cycles > 0.0 then Float.min 1.0 (r.compute_busy /. r.cycles)
        else 0.0
      | None, None -> 0.0
    in
    let n_waves = full_waves + (if rem > 0 then 1 else 0) in
    let miss_rate =
      match full_result, tail_result with
      | Some (cfg, _), _ | None, Some (cfg, _) -> cfg.miss_rate
      | None, None -> 0.0
    in
    let wave_busy =
      match full_result, tail_result with
      | Some (_, r), _ | None, Some (_, r) -> Some r
      | None, None -> None
    in
    (* Surface the representative wave's busy breakdown and the occupancy
       decision as telemetry — this is exactly the data behind the paper's
       ablation figures, and it is free when no sink is installed. *)
    if Alcop_obs.Obs.enabled () then begin
      let open Alcop_obs in
      (match wave_busy with
       | Some r when r.cycles > 0.0 ->
         let frac busy = Float.min 1.0 (busy /. r.cycles) in
         Obs.gauge "timing.busy.compute" (frac r.compute_busy);
         Obs.gauge "timing.busy.dram" (frac r.dram_busy);
         Obs.gauge "timing.busy.llc" (frac r.llc_busy);
         Obs.gauge "timing.busy.smem" (frac r.smem_busy)
       | _ -> ());
      Obs.gauge "timing.tbs_per_sm" (float_of_int occ.Occupancy.tbs_per_sm);
      Obs.gauge "timing.n_waves" (float_of_int n_waves);
      Obs.gauge "timing.miss_rate" miss_rate;
      Obs.point "timing.occupancy"
        [ ("limiter", Json.Str occ.Occupancy.limiter);
          ("tbs_per_sm", Json.Int occ.Occupancy.tbs_per_sm);
          ("n_waves", Json.Int n_waves) ]
    end;
    Ok
      { total_cycles;
        microseconds = Alcop_hw.Hw_config.cycles_to_us hw total_cycles;
        n_waves; tbs_per_sm = occ.Occupancy.tbs_per_sm;
        occupancy_limiter = occ.Occupancy.limiter; wave_cycles; tail_cycles;
        miss_rate; compute_utilization; wave_busy }
