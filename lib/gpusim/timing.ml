(* Discrete-event timing simulator.

   One "wave" simulates the co-resident threadblocks of one SM replaying
   the kernel's event trace, contending for four resources: DRAM bandwidth
   (device-wide, divided by active SMs), LLC bandwidth (likewise), the SM's
   shared-memory throughput and the SM's tensor cores. Kernel latency is
   wave latency times the number of threadblock waves (the paper's
   threadblock-batch model, Sec. IV-A), plus the partial tail wave and a
   launch overhead.

   Blocking rules:
   - loads never block at issue; their completion times are assigned from
     the relevant bandwidth servers plus a round-trip latency;
   - a compute event blocks on all outstanding synchronous loads (the
     scoreboard) and on explicit pipeline waits that precede it;
   - a barrier blocks on every outstanding load of the threadblock;
   - Wait_oldest blocks until the oldest committed batch of its pipeline
     group has landed; Acquire/Release/Commit are bookkeeping.

   This simulator is deliberately richer than the analytical model of paper
   Table I (cache locality, wave quantization, bank conflicts, issue
   overhead, launch overhead, deterministic residual perturbation), so that
   learned cost models retain an edge over the analytical model alone
   (paper Sec. IV-C).

   The replay engine runs on the packed [Trace.program] representation:
   per-threadblock state lives in flat arrays indexed by threadblock (and
   by threadblock x group for pipeline accounting), and batch ordinals /
   ring depths are read off the program instead of being discovered with
   queues — every threadblock executes the same program, so they are
   static. All per-wave state comes from a domain-local scratch arena that
   grows to the high-water mark and is reused across waves, so a wave
   simulation allocates O(1) words regardless of trace length.

   Every advance of a threadblock's simulated clock can additionally be
   observed through a [probe]: the engine labels each interval with the
   stall class that caused it (the substrate of [Profile]), and reports
   each load's issue-to-land flight for in-flight timeline rendering. With
   no probe installed the bookkeeping degenerates to a handful of integer
   increments, so the tuner's hot path is unaffected. *)

type config = {
  hw : Alcop_hw.Hw_config.t;
  residents : int;
  active_sms : int;
  warps_per_tb : int;
  miss_rate : float;
  smem_penalty : float;
  issue_overhead : float;
  barrier_groups : string list;
      (** scope-synchronized pipeline groups: their waits are hoisting
          barriers like [Barrier] itself *)
}

type server = { mutable next_free : float; mutable busy : float }

let server () = { next_free = 0.0; busy = 0.0 }

(* Simulated times are never NaN, so a plain compare matches [fmax]
   bit-for-bit. Both helpers are small enough for the non-flambda inliner:
   on the per-event path neither the comparison nor the served floats box,
   which is what keeps a wave O(1) allocation. *)
let fmax (a : float) (b : float) = if a >= b then a else b

let serve srv ~now ~cost =
  let start = fmax now srv.next_free in
  let finish = start +. cost in
  srv.next_free <- finish;
  srv.busy <- srv.busy +. cost;
  finish

(* --- stall attribution --- *)

type stall_class =
  | Compute
  | Dram_bw
  | Llc_bw
  | Smem_port
  | Sync_wait
  | Issue
  | Launch

let stall_class_name = function
  | Compute -> "compute"
  | Dram_bw -> "dram_bw"
  | Llc_bw -> "llc_bw"
  | Smem_port -> "smem_port"
  | Sync_wait -> "sync_wait"
  | Issue -> "issue"
  | Launch -> "launch"

let all_stall_classes =
  [ Compute; Dram_bw; Llc_bw; Smem_port; Sync_wait; Issue; Launch ]

type advance = {
  adv_tb : int;
  adv_class : stall_class;
  adv_group : string option;
      (** the pipeline group whose wait caused the interval, if any *)
  adv_ordinal : int;
      (** ordinal of the consumed batch within its group (stage slot =
          ordinal mod stages); -1 for intervals not tied to a batch *)
  adv_start : float;
  adv_stop : float;
}

type flight = {
  fl_tb : int;
  fl_group : string option;
  fl_batch : int;  (** batch ordinal within the group; -1 when ungrouped *)
  fl_async : bool;
  fl_level : Trace.level;
  fl_bytes : int;
  fl_issue : float;
  fl_land : float;
}

type probe = {
  on_advance : advance -> unit;
  on_flight : flight -> unit;
}

(* --- pipeline probe ---

   Opt-in observatory channel, separate from [probe] so the equivalence
   gate against the frozen legacy engine (which predates it) is
   untouched. The [advance] stream only materializes non-empty stall
   intervals — a wait that finds its batch already landed produces
   nothing there — so positive prefetch slack is invisible to it; these
   events carry the ready/start pair for every commit and wait
   regardless of whether anyone stalled. *)

type pipe_event =
  | Fill of {
      pf_tb : int;
      pf_group : int;  (** index into [Trace.program.groups] *)
      pf_batch : int;  (** batch ordinal the commit closes *)
      pf_commit : float;  (** cycle the commit issues *)
      pf_ready : float;
          (** cycle the batch's last async load lands (0 when the batch
              contains no loads) *)
    }
  | Consume of {
      pc_tb : int;
      pc_group : int;
      pc_ordinal : int;  (** consumption ordinal of the wait *)
      pc_consumed : int;  (** committed batch index it consumes; -1 none *)
      pc_start : float;  (** cycle the wait begins *)
      pc_ready : float;  (** cycle the consumed batch landed *)
      pc_finish : float;  (** [max start ready] *)
    }
  | Barrier_wait of { pw_tb : int; pw_start : float; pw_finish : float }
  | Drain of { pd_tb : int; pd_start : float; pd_finish : float }
      (** end-of-program wait for outstanding loads/stores; also the
          threadblock's completion time ([pd_finish]) *)

type wave_result = {
  cycles : float;
  compute_busy : float;
  dram_busy : float;
  llc_busy : float;
  smem_busy : float;
}

(* --- cause mixes, packed ---

   Cause composition of a set of outstanding loads: how much of their
   completion time went to DRAM service/queueing, LLC service/queueing,
   shared-memory throughput, and fixed round-trip latency. When a consumer
   stalls on those loads the dominant component classifies the stall:
   queue-heavy loads mean the stall is a bandwidth problem (more pipeline
   stages will NOT hide it), latency-heavy loads mean it is hideable
   latency (the Fig. 1b story).

   A mix is four consecutive floats [dram; llc; smem; lat] at a base index
   of a flat array — no records, so tracking waves reuse scratch too. *)

let mix_reset4 m base =
  m.(base) <- 0.0;
  m.(base + 1) <- 0.0;
  m.(base + 2) <- 0.0;
  m.(base + 3) <- 0.0

let mix_copy4 dst dbase src sbase =
  dst.(dbase) <- src.(sbase);
  dst.(dbase + 1) <- src.(sbase + 1);
  dst.(dbase + 2) <- src.(sbase + 2);
  dst.(dbase + 3) <- src.(sbase + 3)

let mix_add4 dst dbase src sbase =
  dst.(dbase) <- dst.(dbase) +. src.(sbase);
  dst.(dbase + 1) <- dst.(dbase + 1) +. src.(sbase + 1);
  dst.(dbase + 2) <- dst.(dbase + 2) +. src.(sbase + 2);
  dst.(dbase + 3) <- dst.(dbase + 3) +. src.(sbase + 3)

let mix_dominant m base =
  let d = m.(base) and l = m.(base + 1) and s = m.(base + 2)
  and t = m.(base + 3) in
  if d > 0.0 && d >= l && d >= s && d >= t then Dram_bw
  else if l > 0.0 && l >= s && l >= t then Llc_bw
  else if s > 0.0 && s >= t then Smem_port
  else Sync_wait

(* --- advance arena ---

   Preallocated, reusable buffer of (tb, class, start, stop) records — the
   packed replacement of the old [advance list ref] bucket recorder in
   [run]. One per domain; [run] resets it, the representative wave fills
   it, [critical_stall_fractions] reads it before [run] returns. *)

type adv_arena = {
  mutable a_n : int;
  mutable a_tb : int array;
  mutable a_cls : int array;
  mutable a_start : float array;
  mutable a_stop : float array;
}

let stall_class_index = function
  | Compute -> 0
  | Dram_bw -> 1
  | Llc_bw -> 2
  | Smem_port -> 3
  | Sync_wait -> 4
  | Issue -> 5
  | Launch -> 6

let stall_class_of_index =
  [| Compute; Dram_bw; Llc_bw; Smem_port; Sync_wait; Issue; Launch |]

let arena_key =
  Domain.DLS.new_key (fun () ->
      { a_n = 0; a_tb = [||]; a_cls = [||]; a_start = [||]; a_stop = [||] })

let obtain_arena () =
  let a = Domain.DLS.get arena_key in
  a.a_n <- 0;
  a

let arena_push a tb cls start stop =
  let cap = Array.length a.a_tb in
  if a.a_n = cap then begin
    let ncap = if cap = 0 then 1024 else 2 * cap in
    let gi old =
      let x = Array.make ncap 0 in
      Array.blit old 0 x 0 cap;
      x
    in
    let gf old =
      let x = Array.make ncap 0.0 in
      Array.blit old 0 x 0 cap;
      x
    in
    a.a_tb <- gi a.a_tb;
    a.a_cls <- gi a.a_cls;
    a.a_start <- gf a.a_start;
    a.a_stop <- gf a.a_stop
  end;
  let k = a.a_n in
  a.a_tb.(k) <- tb;
  a.a_cls.(k) <- stall_class_index cls;
  a.a_start.(k) <- start;
  a.a_stop.(k) <- stop;
  a.a_n <- k + 1

(* --- per-wave scratch ---

   Flat state arrays, domain-local and grow-only: acquired at the top of a
   wave simulation, zeroed to the needed extent, returned on exit. The
   [in_use] flag catches re-entrancy (a probe callback that itself
   simulates) by falling back to a fresh allocation. *)

type scratch = {
  mutable in_use : bool;
  mutable sc_time : float array;  (* per tb *)
  mutable sc_recent : float array;  (* per tb: sync_recent *)
  mutable sc_due : float array;  (* per tb: sync_due *)
  mutable sc_out : float array;  (* per tb: all_outstanding *)
  mutable sc_cursor : int array;  (* per tb *)
  mutable sc_boundary : bool array;  (* per tb: at_boundary *)
  mutable sc_open : float array;  (* per tb x group: open batch *)
  mutable sc_ring : float array;  (* per tb x group x depth slot *)
  mutable sc_sync_mix : float array;  (* per tb, tracking only *)
  mutable sc_due_mix : float array;  (* per tb, tracking only *)
  mutable sc_open_mix : float array;  (* per tb x group, tracking only *)
  mutable sc_ring_mix : float array;  (* per ring slot, tracking only *)
}

let fresh_scratch () =
  { in_use = false; sc_time = [||]; sc_recent = [||]; sc_due = [||];
    sc_out = [||]; sc_cursor = [||]; sc_boundary = [||]; sc_open = [||];
    sc_ring = [||]; sc_sync_mix = [||]; sc_due_mix = [||];
    sc_open_mix = [||]; sc_ring_mix = [||] }

let scratch_key = Domain.DLS.new_key fresh_scratch

let fgrow cur n =
  if Array.length cur >= n then begin
    Array.fill cur 0 n 0.0;
    cur
  end
  else Array.make n 0.0

let igrow cur n =
  if Array.length cur >= n then begin
    Array.fill cur 0 n 0;
    cur
  end
  else Array.make n 0

let bgrow cur n =
  if Array.length cur >= n then begin
    Array.fill cur 0 n false;
    cur
  end
  else Array.make n false

(* --- the wave engine --- *)

let simulate_packed ?probe ?arena ?pipe (cfg : config) (p : Trace.program) =
  let hw = cfg.hw in
  let active = float_of_int (max 1 cfg.active_sms) in
  let dram = server () and llc = server () and smem = server ()
  and compute = server () in
  let dram_rate = hw.Alcop_hw.Hw_config.dram_bytes_per_cycle /. active in
  let llc_rate = hw.Alcop_hw.Hw_config.llc_bytes_per_cycle /. active in
  let smem_rate = hw.Alcop_hw.Hw_config.smem_bytes_per_cycle_per_sm in
  let total_warps = cfg.residents * cfg.warps_per_tb in
  (* Four scheduler partitions per SM: tensor cores reach peak only with at
     least four resident warps. *)
  let util = Float.min 1.0 (float_of_int total_warps /. 4.0) in
  let compute_rate =
    float_of_int hw.Alcop_hw.Hw_config.tensor_core_flops_per_cycle *. util
  in
  let load_latency =
    hw.Alcop_hw.Hw_config.llc_latency
    +. (cfg.miss_rate
        *. (hw.Alcop_hw.Hw_config.dram_latency -. hw.Alcop_hw.Hw_config.llc_latency))
  in
  let smem_latency = hw.Alcop_hw.Hw_config.smem_latency in
  let tracking = probe <> None || arena <> None in
  let probe_on = probe <> None in
  let att i cls group ordinal start stop =
    if stop > start then begin
      (match probe with
       | Some pr ->
         pr.on_advance
           { adv_tb = i; adv_class = cls; adv_group = group;
             adv_ordinal = ordinal; adv_start = start; adv_stop = stop }
       | None -> ());
      match arena with
      | Some a -> arena_push a i cls start stop
      | None -> ()
    end
  in
  let r = cfg.residents in
  let ng = Array.length p.Trace.groups in
  let maxd =
    Array.fold_left (fun acc d -> max acc d) 1 p.Trace.group_depth
  in
  let is_barrier =
    Array.map (fun gid -> List.mem gid cfg.barrier_groups) p.Trace.groups
  in
  let sc =
    let sc = Domain.DLS.get scratch_key in
    if sc.in_use then fresh_scratch () else sc
  in
  sc.in_use <- true;
  Fun.protect ~finally:(fun () -> sc.in_use <- false) @@ fun () ->
  sc.sc_time <- fgrow sc.sc_time r;
  sc.sc_recent <- fgrow sc.sc_recent r;
  sc.sc_due <- fgrow sc.sc_due r;
  sc.sc_out <- fgrow sc.sc_out r;
  sc.sc_cursor <- igrow sc.sc_cursor r;
  sc.sc_boundary <- bgrow sc.sc_boundary r;
  sc.sc_open <- fgrow sc.sc_open (r * ng);
  sc.sc_ring <- fgrow sc.sc_ring (r * ng * maxd);
  if tracking then begin
    sc.sc_sync_mix <- fgrow sc.sc_sync_mix (4 * r);
    sc.sc_due_mix <- fgrow sc.sc_due_mix (4 * r);
    sc.sc_open_mix <- fgrow sc.sc_open_mix (4 * r * ng);
    sc.sc_ring_mix <- fgrow sc.sc_ring_mix (4 * r * ng * maxd)
  end;
  let time = sc.sc_time and recent = sc.sc_recent and due = sc.sc_due
  and out = sc.sc_out and cursor = sc.sc_cursor
  and boundary = sc.sc_boundary and openb = sc.sc_open
  and ring = sc.sc_ring in
  let sync_mix = sc.sc_sync_mix and due_mix = sc.sc_due_mix
  and open_mix = sc.sc_open_mix and ring_mix = sc.sc_ring_mix in
  let n = p.Trace.n in
  let opcode = p.Trace.opcode and arg = p.Trace.arg
  and group = p.Trace.group and flags = p.Trace.flags
  and batch = p.Trace.batch and gdepth = p.Trace.group_depth in
  let step i =
    let t0 = time.(i) in
    let now = t0 +. cfg.issue_overhead in
    if tracking then att i Issue None (-1) t0 now;
    let c = cursor.(i) in
    let op = opcode.{c} in
    if op = Trace.op_load then begin
      let bytes = arg.{c} in
      let b = float_of_int bytes in
      let fl = flags.{c} in
      let shared = fl land Trace.flag_shared <> 0 in
      let async = fl land Trace.flag_async <> 0 in
      let g = group.{c} in
      let piped = async && g >= 0 in
      (* destination accumulator of this load's cause components: the open
         batch of its pipe, or the threadblock's synchronous scoreboard *)
      let dst, dbase =
        if not tracking then (sync_mix, 0)
        else if piped then (open_mix, 4 * ((i * ng) + g))
        else (sync_mix, 4 * i)
      in
      let completion =
        if not shared then begin
          let lf = serve llc ~now ~cost:(b /. llc_rate) in
          let df = serve dram ~now ~cost:(b *. cfg.miss_rate /. dram_rate) in
          if tracking then begin
            dst.(dbase) <- dst.(dbase) +. fmax 0.0 (df -. now);
            dst.(dbase + 1) <- dst.(dbase + 1) +. fmax 0.0 (lf -. now);
            dst.(dbase + 3) <- dst.(dbase + 3) +. load_latency
          end;
          fmax lf df +. load_latency
        end
        else begin
          let sf = serve smem ~now ~cost:(b *. cfg.smem_penalty /. smem_rate) in
          if tracking then begin
            dst.(dbase + 2) <- dst.(dbase + 2) +. fmax 0.0 (sf -. now);
            dst.(dbase + 3) <- dst.(dbase + 3) +. smem_latency
          end;
          sf +. smem_latency
        end
      in
      out.(i) <- fmax out.(i) completion;
      if piped then begin
        let pg = (i * ng) + g in
        openb.(pg) <- fmax openb.(pg) completion
      end
      else recent.(i) <- fmax recent.(i) completion;
      (match probe with
       | Some pr ->
         pr.on_flight
           { fl_tb = i;
             fl_group = (if g >= 0 then Some p.Trace.groups.(g) else None);
             fl_batch = batch.{c}; fl_async = async;
             fl_level =
               (if shared then Trace.From_shared else Trace.From_global);
             fl_bytes = bytes; fl_issue = now; fl_land = completion }
       | None -> ());
      time.(i) <- now
    end
    else if op = Trace.op_store then begin
      let completion =
        serve dram ~now ~cost:(float_of_int arg.{c} /. dram_rate)
        +. hw.Alcop_hw.Hw_config.dram_write_latency
      in
      out.(i) <- fmax out.(i) completion;
      time.(i) <- now
    end
    else if op = Trace.op_commit then begin
      let g = group.{c} in
      let pg = (i * ng) + g in
      let slot = (pg * maxd) + (batch.{c} mod gdepth.(g)) in
      ring.(slot) <- openb.(pg);
      (match pipe with
       | Some f ->
         f (Fill
              { pf_tb = i; pf_group = g; pf_batch = batch.{c};
                pf_commit = now; pf_ready = openb.(pg) })
       | None -> ());
      openb.(pg) <- 0.0;
      if tracking then begin
        mix_copy4 ring_mix (4 * slot) open_mix (4 * pg);
        mix_reset4 open_mix (4 * pg)
      end;
      time.(i) <- now
    end
    else if op = Trace.op_wait then begin
      let g = group.{c} in
      (* [arg] carries the index of the committed batch this wait consumes
         (-1 when the queue would have been empty), [batch] its
         consumption ordinal — both precomputed by [Trace.finalize]. *)
      let consumed = arg.{c} in
      let slot =
        if consumed >= 0 then
          ((((i * ng) + g) * maxd) + (consumed mod gdepth.(g)))
        else -1
      in
      let ready = if consumed >= 0 then ring.(slot) else 0.0 in
      if is_barrier.(g) then boundary.(i) <- true;
      let t = fmax now ready in
      if tracking then begin
        let cls =
          if consumed >= 0 then mix_dominant ring_mix (4 * slot)
          else mix_dominant due_mix (4 * i)
        in
        let gname = if probe_on then Some p.Trace.groups.(g) else None in
        att i cls gname batch.{c} now t
      end;
      (match pipe with
       | Some f ->
         f (Consume
              { pc_tb = i; pc_group = g; pc_ordinal = batch.{c};
                pc_consumed = consumed; pc_start = now; pc_ready = ready;
                pc_finish = t })
       | None -> ());
      time.(i) <- t
    end
    else if op = Trace.op_acquire || op = Trace.op_release then
      (* Stage-slot accounting has no timing effect in a lockstep
         threadblock model: releases precede acquires in program order. *)
      time.(i) <- now
    else if op = Trace.op_barrier then begin
      boundary.(i) <- true;
      let t = fmax now out.(i) in
      if tracking then att i Sync_wait None (-1) now t;
      (match pipe with
       | Some f -> f (Barrier_wait { pw_tb = i; pw_start = now; pw_finish = t })
       | None -> ());
      time.(i) <- t
    end
    else begin
      (* compute *)
      if boundary.(i) then begin
        (* loads issued since the boundary could not be hoisted above it *)
        due.(i) <- fmax due.(i) recent.(i);
        recent.(i) <- 0.0;
        if tracking then begin
          mix_add4 due_mix (4 * i) sync_mix (4 * i);
          mix_reset4 sync_mix (4 * i)
        end;
        boundary.(i) <- false
      end;
      let start = fmax now due.(i) in
      if tracking then
        att i (mix_dominant due_mix (4 * i)) None (-1) now start;
      due.(i) <- fmax due.(i) recent.(i);
      recent.(i) <- 0.0;
      if tracking then begin
        mix_add4 due_mix (4 * i) sync_mix (4 * i);
        mix_reset4 sync_mix (4 * i)
      end;
      let finish =
        serve compute ~now:start
          ~cost:(float_of_int arg.{c} /. compute_rate)
      in
      if tracking then att i Compute None (-1) start finish;
      time.(i) <- finish
    end;
    cursor.(i) <- c + 1;
    if c + 1 >= n then begin
      (* drain: the epilogue waits for every outstanding store/load *)
      let t0d = time.(i) in
      let t = fmax t0d out.(i) in
      if tracking then att i Sync_wait None (-1) t0d t;
      (match pipe with
       | Some f -> f (Drain { pd_tb = i; pd_start = t0d; pd_finish = t })
       | None -> ());
      time.(i) <- t
    end
  in
  (* Advance the earliest threadblock one event at a time so server queues
     interleave in global time order. *)
  if n > 0 then begin
    let best = ref 0 in
    while !best >= 0 do
      best := -1;
      for i = 0 to r - 1 do
        if cursor.(i) < n && (!best < 0 || time.(i) < time.(!best)) then
          best := i
      done;
      if !best >= 0 then step !best
    done
  end;
  let cycles = ref 0.0 in
  for i = 0 to r - 1 do
    if time.(i) > !cycles then cycles := time.(i)
  done;
  { cycles = !cycles; compute_busy = compute.busy; dram_busy = dram.busy;
    llc_busy = llc.busy; smem_busy = smem.busy }

let simulate_program ?probe ?pipe cfg p = simulate_packed ?probe ?pipe cfg p

let simulate_wave ?probe ?pipe (cfg : config) (trace : Trace.event array) =
  simulate_packed ?probe ?pipe cfg (Trace.pack trace)

(* --- incremental wave reuse ---

   Between tuner trials most candidate schedules share wave shapes: the
   same packed program simulated under the same wave config produces the
   same latencies, so the tuner opts in to a keyed cache of wave results.
   Keys are (program content hash, residents, active SMs) with a full
   structural check of config and program on hit, so a reused latency is
   provably the one a fresh simulation would produce. Probe- or
   arena-carrying waves bypass the cache (their value is the side
   channel). Counters are exposed through a function, not [Obs], so
   enabling reuse cannot perturb the -j determinism contract. *)

type cache_entry = {
  ce_cfg : config;
  ce_prog : Trace.program;
  ce_result : wave_result;
}

let wave_reuse = Atomic.make false
let wave_cache_cap = 1024

let wave_cache : (string * int * int, cache_entry) Hashtbl.t =
  Hashtbl.create 256

let wave_cache_fifo : (string * int * int) Queue.t = Queue.create ()
let wave_cache_lock = Mutex.create ()
let wave_cache_hits = ref 0
let wave_cache_misses = ref 0

let with_cache_lock f =
  Mutex.lock wave_cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock wave_cache_lock) f

let with_wave_reuse f =
  let prev = Atomic.exchange wave_reuse true in
  Fun.protect ~finally:(fun () -> Atomic.set wave_reuse prev) f

let wave_reuse_stats () = with_cache_lock (fun () -> (!wave_cache_hits, !wave_cache_misses))

(* Optional disk tier behind the in-memory cache, injected from above
   (lib/core's [Store] depends on this library, not vice versa). The
   loader is handed the full config so it can verify a persisted entry
   against the machine model before trusting it. Disk traffic depends on
   what earlier processes left behind, so like the in-memory counters the
   disk counters are a function, never [Obs] telemetry. *)
type wave_persist = {
  wp_load : program_hash:string -> config -> wave_result option;
  wp_save : program_hash:string -> config -> wave_result -> unit;
}

let wave_persist : wave_persist option Atomic.t = Atomic.make None
let set_wave_persist p = Atomic.set wave_persist p
let wave_disk_hits = ref 0
let wave_disk_misses = ref 0

let wave_persist_stats () =
  with_cache_lock (fun () -> (!wave_disk_hits, !wave_disk_misses))

let wave_cache_clear () =
  with_cache_lock (fun () ->
      Hashtbl.reset wave_cache;
      Queue.clear wave_cache_fifo)

let program_equal (a : Trace.program) (b : Trace.program) =
  a == b
  || (a.Trace.n = b.Trace.n
      && a.Trace.opcode = b.Trace.opcode
      && a.Trace.arg = b.Trace.arg
      && a.Trace.group = b.Trace.group
      && a.Trace.flags = b.Trace.flags
      && a.Trace.groups = b.Trace.groups)

let config_equal (a : config) (b : config) =
  a.residents = b.residents && a.active_sms = b.active_sms
  && a.warps_per_tb = b.warps_per_tb
  && a.miss_rate = b.miss_rate
  && a.smem_penalty = b.smem_penalty
  && a.issue_overhead = b.issue_overhead
  && a.barrier_groups = b.barrier_groups
  && a.hw = b.hw

let cached_simulate (cfg : config) (p : Trace.program) =
  if not (Atomic.get wave_reuse) then simulate_packed cfg p
  else begin
    let ph = Trace.program_hash p in
    let key = (ph, cfg.residents, cfg.active_sms) in
    let hit =
      with_cache_lock (fun () ->
          match Hashtbl.find_opt wave_cache key with
          | Some e when config_equal e.ce_cfg cfg && program_equal e.ce_prog p ->
            incr wave_cache_hits;
            Some e.ce_result
          | _ ->
            incr wave_cache_misses;
            None)
    in
    let insert r =
      with_cache_lock (fun () ->
          if not (Hashtbl.mem wave_cache key) then begin
            if Queue.length wave_cache_fifo >= wave_cache_cap then
              Hashtbl.remove wave_cache (Queue.pop wave_cache_fifo);
            Hashtbl.replace wave_cache key
              { ce_cfg = cfg; ce_prog = p; ce_result = r };
            Queue.push key wave_cache_fifo
          end)
    in
    match hit with
    | Some r -> r
    | None ->
      (* Memory miss: consult the disk tier (when installed) before
         simulating; a verified disk entry back-fills the memory cache so
         the next hit in this process is lock-and-go. *)
      let disk =
        match Atomic.get wave_persist with
        | None -> None
        | Some wp ->
          (match wp.wp_load ~program_hash:ph cfg with
           | Some r ->
             with_cache_lock (fun () -> incr wave_disk_hits);
             Some r
           | None ->
             with_cache_lock (fun () -> incr wave_disk_misses);
             None)
      in
      (match disk with
       | Some r ->
         insert r;
         r
       | None ->
         let r = simulate_packed cfg p in
         insert r;
         (match Atomic.get wave_persist with
          | Some wp -> wp.wp_save ~program_hash:ph cfg r
          | None -> ());
         r)
  end

(* --- Whole-kernel latency --- *)

type request = {
  hw : Alcop_hw.Hw_config.t;
  program : Trace.program;
  total_tbs : int;
  warps_per_tb : int;
  smem_per_tb : int;
  regs_per_thread : int;
  grid_m : int;
  grid_n : int;
  grid_z : int;
  tb_m : int;
  tb_n : int;
  tb_k : int;
  elem_bytes : int;
  swizzle : bool;
  jitter_key : int;
  barrier_groups : string list;
}

type kernel_timing = {
  total_cycles : float;
  microseconds : float;
  n_waves : int;
  tbs_per_sm : int;
  occupancy_limiter : string;
  wave_cycles : float;
  tail_cycles : float;
  miss_rate : float;
  compute_utilization : float;  (** busy fraction of tensor cores, full wave *)
  wave_busy : wave_result option;
      (** raw busy breakdown of the representative wave (full wave when one
          exists, else the tail wave); [None] for an empty trace *)
}

let launch_overhead_cycles = 2200.0

(* Deterministic residual: hardware effects outside the model (clock
   behaviour, instruction scheduling, partition camping) folded into a
   +-3% multiplier keyed by the schedule. *)
let jitter key =
  let h = Hashtbl.hash (key, 0x5DEECE66D) land 0xFFFF in
  1.0 +. (0.06 *. ((float_of_int h /. 65535.0) -. 0.5))

let bank_conflict_penalty ~swizzle ~tb_k ~elem_bytes =
  if swizzle then 1.0
  else begin
    (* Without swizzling, power-of-two row strides land warps on the same
       banks; worst when the row stride is a multiple of the 128-byte bank
       window. *)
    let row = tb_k * elem_bytes in
    if row mod 128 = 0 then 3.0 else 2.0
  end

(* The wave plan: how the grid quantizes into full and tail waves, and the
   per-wave simulation configs. Shared by [run] and the [Profile] recorder
   so both simulate exactly the same machine states. *)
type plan = {
  plan_occ : Occupancy.t;
  full_waves : int;
  remainder : int;  (** threadblocks in the partial tail wave *)
  full_cfg : config option;  (** [Some] iff [full_waves > 0] *)
  tail_cfg : config option;  (** [Some] iff [remainder > 0] *)
}

let plan (req : request) =
  let hw = req.hw in
  match
    Occupancy.compute hw ~smem_per_tb:req.smem_per_tb
      ~warps_per_tb:req.warps_per_tb ~regs_per_thread:req.regs_per_thread
  with
  | Error f -> Error f
  | Ok occ ->
    let slots = occ.Occupancy.tbs_per_sm * hw.Alcop_hw.Hw_config.num_sms in
    let full_waves = req.total_tbs / slots in
    let rem = req.total_tbs mod slots in
    let wave_cfg residents active =
      let loc =
        Locality.compute hw ~grid_m:req.grid_m ~grid_n:req.grid_n
          ~grid_z:req.grid_z ~tb_m:req.tb_m ~tb_n:req.tb_n ~tb_k:req.tb_k
          ~elem_bytes:req.elem_bytes ~resident_tbs:(residents * active)
      in
      { hw; residents; active_sms = active; warps_per_tb = req.warps_per_tb;
        miss_rate = loc.Locality.miss_rate;
        smem_penalty =
          bank_conflict_penalty ~swizzle:req.swizzle ~tb_k:req.tb_k
            ~elem_bytes:req.elem_bytes;
        issue_overhead = 4.0;
        barrier_groups = req.barrier_groups }
    in
    let full_cfg =
      if full_waves > 0 then
        Some (wave_cfg occ.Occupancy.tbs_per_sm hw.Alcop_hw.Hw_config.num_sms)
      else None
    in
    let tail_cfg =
      if rem > 0 then begin
        let active = min hw.Alcop_hw.Hw_config.num_sms rem in
        Some (wave_cfg ((rem + active - 1) / active) active)
      end
      else None
    in
    Ok { plan_occ = occ; full_waves; remainder = rem; full_cfg; tail_cfg }

(* A cheap bucket-only recorder: per-threadblock stall-class totals of one
   simulated wave, reported for the slowest (critical-path) threadblock.
   [run] uses it to publish [timing.stall.*] gauges when observability is
   on; [Profile] keeps full timelines instead. The arena is iterated from
   the end so float accumulation order matches the historical
   reverse-chronological advance list. *)
let critical_stall_fractions wave_result (a : adv_arena) =
  let totals : (int * stall_class, float) Hashtbl.t = Hashtbl.create 16 in
  let ends : (int, float) Hashtbl.t = Hashtbl.create 8 in
  for k = a.a_n - 1 downto 0 do
    let tb = a.a_tb.(k) in
    let key = (tb, stall_class_of_index.(a.a_cls.(k))) in
    let prior = Option.value ~default:0.0 (Hashtbl.find_opt totals key) in
    Hashtbl.replace totals key (prior +. (a.a_stop.(k) -. a.a_start.(k)));
    let e = Option.value ~default:0.0 (Hashtbl.find_opt ends tb) in
    Hashtbl.replace ends tb (fmax e a.a_stop.(k))
  done;
  let critical =
    Hashtbl.fold
      (fun tb e (bt, be) -> if e > be then (tb, e) else (bt, be))
      ends (0, 0.0)
    |> fst
  in
  if wave_result.cycles <= 0.0 then []
  else
    List.filter_map
      (fun cls ->
        match Hashtbl.find_opt totals (critical, cls) with
        | Some c -> Some (cls, c /. wave_result.cycles)
        | None -> Some (cls, 0.0))
      all_stall_classes

let run ?pool (req : request) =
  let hw = req.hw in
  match plan req with
  | Error f -> Error f
  | Ok pl ->
    let occ = pl.plan_occ in
    let full_waves = pl.full_waves and rem = pl.remainder in
    (* When observability is on, attach the arena recorder to the
       representative wave (the full wave when one exists, else the tail)
       so the stall breakdown rides along at no extra simulation cost. *)
    let arena = if Alcop_obs.Obs.enabled () then Some (obtain_arena ()) else None in
    let representative_is_full = pl.full_cfg <> None in
    let full_arena = if representative_is_full then arena else None in
    let tail_arena = if representative_is_full then None else arena in
    let sim cfg = function
      | Some ar -> simulate_packed ~arena:ar cfg req.program
      | None -> cached_simulate cfg req.program
    in
    (* The full and tail waves are independent simulations; with a pool of
       2+ workers run them on two domains. Only the representative wave
       carries the arena, so it is written by exactly one worker and read
       after the join — and the combination below is in fixed (full, tail)
       order, so the result is bit-identical to the sequential pair. *)
    let full_result, tail_result =
      match (pool, pl.full_cfg, pl.tail_cfg) with
      | Some p, Some full_cfg, Some tail_cfg when Alcop_par.Pool.jobs p > 1 ->
        (match
           Alcop_par.Pool.map p
             (fun (cfg, ar) -> sim cfg ar)
             [ (full_cfg, full_arena); (tail_cfg, tail_arena) ]
         with
        | [ fr; tr ] -> (Some (full_cfg, fr), Some (tail_cfg, tr))
        | _ -> assert false)
      | _ ->
        ( Option.map (fun cfg -> (cfg, sim cfg full_arena)) pl.full_cfg,
          Option.map (fun cfg -> (cfg, sim cfg tail_arena)) pl.tail_cfg )
    in
    let wave_cycles =
      match full_result with Some (_, r) -> r.cycles | None -> 0.0
    in
    let tail_cycles =
      match tail_result with Some (_, r) -> r.cycles | None -> 0.0
    in
    let body = (float_of_int full_waves *. wave_cycles) +. tail_cycles in
    let total_cycles =
      ((body +. launch_overhead_cycles) *. jitter req.jitter_key)
    in
    let compute_utilization =
      match full_result, tail_result with
      | Some (_, r), _ | None, Some (_, r) ->
        if r.cycles > 0.0 then Float.min 1.0 (r.compute_busy /. r.cycles)
        else 0.0
      | None, None -> 0.0
    in
    let n_waves = full_waves + (if rem > 0 then 1 else 0) in
    let miss_rate =
      match full_result, tail_result with
      | Some (cfg, _), _ | None, Some (cfg, _) -> cfg.miss_rate
      | None, None -> 0.0
    in
    let wave_busy =
      match full_result, tail_result with
      | Some (_, r), _ | None, Some (_, r) -> Some r
      | None, None -> None
    in
    (* Surface the representative wave's busy breakdown, the stall
       attribution and the occupancy decision as telemetry — this is
       exactly the data behind the paper's ablation figures, and it is
       free when no sink is installed. *)
    if Alcop_obs.Obs.enabled () then begin
      let open Alcop_obs in
      (match wave_busy, arena with
       | Some r, Some a when r.cycles > 0.0 ->
         let frac busy = Float.min 1.0 (busy /. r.cycles) in
         Obs.gauge "timing.busy.compute" (frac r.compute_busy);
         Obs.gauge "timing.busy.dram" (frac r.dram_busy);
         Obs.gauge "timing.busy.llc" (frac r.llc_busy);
         Obs.gauge "timing.busy.smem" (frac r.smem_busy);
         List.iter
           (fun (cls, f) ->
             if cls <> Launch then
               Obs.gauge ("timing.stall." ^ stall_class_name cls) f)
           (critical_stall_fractions r a)
       | _ -> ());
      Obs.gauge "timing.tbs_per_sm" (float_of_int occ.Occupancy.tbs_per_sm);
      Obs.gauge "timing.n_waves" (float_of_int n_waves);
      Obs.gauge "timing.miss_rate" miss_rate;
      (* histogram, not gauge: across a tuning sweep or batch compile the
         distribution of kernel latencies is the interesting object *)
      Obs.observe "timing.kernel.cycles" total_cycles;
      Obs.point "timing.occupancy"
        [ ("limiter", Json.Str occ.Occupancy.limiter);
          ("tbs_per_sm", Json.Int occ.Occupancy.tbs_per_sm);
          ("n_waves", Json.Int n_waves) ]
    end;
    Ok
      { total_cycles;
        microseconds = Alcop_hw.Hw_config.cycles_to_us hw total_cycles;
        n_waves; tbs_per_sm = occ.Occupancy.tbs_per_sm;
        occupancy_limiter = occ.Occupancy.limiter; wave_cycles; tail_cycles;
        miss_rate; compute_utilization; wave_busy }
