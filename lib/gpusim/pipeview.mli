(** Pipeline observatory: per-stage buffer occupancy, prefetch-slack
    attribution and sync-wait accounting for one schedule
    (doc/pipeview.md).

    Replays the representative wave with both the stall-attribution probe
    and the opt-in {!Timing.pipe_event} probe attached, and reduces the
    streams to stage-occupancy timelines, per-wait prefetch slack
    (wait-start minus batch-land cycle; negative = exposed latency), a
    five-term partition of the critical threadblock's cycles that
    telescopes schedule deltas exactly, and a flat feature record for
    cost models. Group identity, protocol kind, stage counts and the
    pass's per-stage footprint are read from [Trace.program]'s group
    table — no pipeline re-analysis. *)

type slack_sample = {
  sl_group : string;
  sl_stage : int;  (** stage slot = consumed batch mod stages *)
  sl_ordinal : int;  (** consumption ordinal of the wait *)
  sl_ready : float;  (** cycle the consumed batch landed *)
  sl_start : float;  (** cycle the wait began *)
  sl_slack : float;  (** [sl_start -. sl_ready]; negative = exposed *)
}

type occupancy_slot = {
  oc_stage : int;
  oc_intervals : (float * float) array;
      (** merged fill-to-retire intervals, in time order *)
  oc_busy : float;  (** union measure of the intervals *)
}

type group_view = {
  gv_id : string;
  gv_stages : int;
  gv_synchronized : bool;
  gv_footprint_bytes : int;  (** pass-computed bytes per stage *)
  gv_high_water_bytes : int;  (** peak observed per-batch load bytes *)
  gv_slots : occupancy_slot array;  (** length [gv_stages] *)
  gv_duty : float;  (** mean busy/cycles over the slots *)
  gv_mean_slack : float;
  gv_min_slack : float;
  gv_exposed_cycles : float;  (** sum of negative-slack magnitudes *)
  gv_n_waits : int;
}

val term_names : string list
(** The five cycle-partition buckets, in display order: compute, exposed
    (pipeline wait stalls), scoreboard (non-pipelined load stalls), sync
    (barriers, drains, pure-latency waits), issue. *)

type t = {
  pv_op : string;
  pv_schedule : string;
  pv_timing : Timing.kernel_timing;
  pv_wave_label : string;  (** ["full"] or ["tail"] *)
  pv_wave_cycles : float;  (** critical threadblock finish time *)
  pv_critical_tb : int;
  pv_terms : (string * float) list;
      (** the five-term partition; sums to [pv_wave_cycles] exactly *)
  pv_groups : group_view list;  (** program group-table order *)
  pv_slacks : slack_sample list;  (** critical TB, program order *)
  pv_barrier_wait : float;
  pv_drain_wait : float;
}

val run :
  ?op:string -> ?schedule:string -> Timing.request ->
  (t, Occupancy.failure) result
(** Time the kernel ({!Timing.run}), then replay its representative wave
    (full wave when one exists, else the tail) with both probes and
    reduce. [Error] iff the schedule exceeds per-threadblock resources. *)

val features : t -> (string * float) list
(** Flat per-schedule feature record (cost-model features; logged per
    tuner trial): wave cycles, per-term shares, barrier/drain cycles,
    then per group [slack_mean.<id>], [slack_min.<id>], [duty.<id>],
    [exposed.<id>], [high_water_frac.<id>]. Deterministic order. *)

(** {1 Schedule comparison}

    The five terms partition the critical threadblock's contiguous stall
    segments, so rounding each term to integer cycles makes the
    telescoping exact: the total delta equals the sum of the term deltas
    with no residual. *)

type delta_term = {
  dt_name : string;
  dt_a : int;  (** rounded cycles in schedule A *)
  dt_b : int;
  dt_delta : int;  (** [dt_b - dt_a] *)
}

type comparison = {
  cmp_terms : delta_term list;
  cmp_total_a : int;
  cmp_total_b : int;
  cmp_total_delta : int;  (** equals the sum of [dt_delta]s exactly *)
}

val compare_views : t -> t -> comparison

val report : t -> string
(** Multi-line text summary: cycle partition, per-group duty/slack table,
    per-stage occupancy. *)

val compare_report : label_a:string -> label_b:string -> t -> t -> string
(** Text rendering of {!compare_views}: the latency delta telescoped into
    the five terms, in integer cycles. *)

val events : t -> Alcop_obs.Obs.event list
(** JSONL-ready events: one [pipeview] point carrying the feature record,
    one [pipeview.slack] point per wait, and occupancy spans per
    (group, stage) interval. *)

val write_jsonl : string -> t -> unit
