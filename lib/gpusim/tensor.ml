(* Dense row-major host tensors used by the functional interpreter and the
   reference implementations. Values are held as float64 regardless of the
   declared dtype; dtype drives byte accounting only.

   Storage is an unboxed [Bigarray.Array1] (float64, C layout): element
   reads and writes never touch the OCaml heap, so functional-correctness
   runs stop churning the minor heap, and the payload is invisible to the
   GC entirely. *)

open Alcop_ir

type data = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  shape : int list;
  strides : int array;
  data : data;
  dtype : Dtype.t;
}

let num_elements shape = List.fold_left ( * ) 1 shape

let shape_equal a b = List.equal Int.equal a b

let strides_of shape =
  let dims = Array.of_list shape in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  strides

let alloc n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let create ?(dtype = Dtype.F16) shape value =
  let ok =
    match shape with
    | [] -> false
    | dims -> List.for_all (fun d -> d > 0) dims
  in
  if not ok then invalid_arg "Tensor.create: bad shape";
  let data = alloc (num_elements shape) in
  Bigarray.Array1.fill data value;
  { shape; strides = strides_of shape; data; dtype }

let zeros ?dtype shape = create ?dtype shape 0.0

let init ?(dtype = Dtype.F16) shape f =
  let strides = strides_of shape in
  let n = num_elements shape in
  let data = alloc n in
  let idx = Array.make (Array.length strides) 0 in
  for flat = 0 to n - 1 do
    let rem = ref flat in
    Array.iteri
      (fun d s ->
        idx.(d) <- !rem / s;
        rem := !rem mod s)
      strides;
    Bigarray.Array1.unsafe_set data flat (f (Array.copy idx))
  done;
  { shape; strides; data; dtype }

(* Deterministic pseudo-random tensor in [-1, 1), seeded per tensor so tests
   and benches are reproducible. *)
let random ?(dtype = Dtype.F16) ~seed shape =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    (* xorshift-ish LCG; quality is irrelevant, determinism is not *)
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. 536870912.0) -. 1.0
  in
  let n = num_elements shape in
  let data = alloc n in
  for flat = 0 to n - 1 do
    Bigarray.Array1.unsafe_set data flat (next ())
  done;
  { shape; strides = strides_of shape; data; dtype }

let get t idx =
  let flat = ref 0 in
  Array.iteri (fun d i -> flat := !flat + (i * t.strides.(d))) idx;
  Bigarray.Array1.get t.data !flat

let set t idx v =
  let flat = ref 0 in
  Array.iteri (fun d i -> flat := !flat + (i * t.strides.(d))) idx;
  Bigarray.Array1.set t.data !flat v

let of_buffer (b : Buffer.t) =
  zeros ~dtype:b.Buffer.dtype b.Buffer.shape

let map f t =
  let n = Bigarray.Array1.dim t.data in
  let data = alloc n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set data i (f (Bigarray.Array1.unsafe_get t.data i))
  done;
  { t with data }

let max_abs_diff a b =
  if not (shape_equal a.shape b.shape) then
    invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  for i = 0 to Bigarray.Array1.dim a.data - 1 do
    worst :=
      Float.max !worst
        (Float.abs
           (Bigarray.Array1.unsafe_get a.data i
            -. Bigarray.Array1.unsafe_get b.data i))
  done;
  !worst

let allclose ?(atol = 1e-6) ?(rtol = 1e-6) a b =
  if not (shape_equal a.shape b.shape) then false
  else begin
    let ok = ref true in
    for i = 0 to Bigarray.Array1.dim a.data - 1 do
      let x = Bigarray.Array1.unsafe_get a.data i in
      let y = Bigarray.Array1.unsafe_get b.data i in
      if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false
    done;
    !ok
  end

let pp fmt t =
  Format.fprintf fmt "tensor[%s] %a (%d elements)"
    (String.concat "x" (List.map string_of_int t.shape))
    Dtype.pp t.dtype
    (Bigarray.Array1.dim t.data)
