(** Dense row-major host tensors for the functional interpreter and
    reference implementations. Values are float64; dtype drives byte
    accounting only. Storage is an unboxed [Bigarray.Array1] (float64,
    C layout), so element access never allocates on the OCaml heap. *)

open Alcop_ir

type data = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  shape : int list;
  strides : int array;
  data : data;
  dtype : Dtype.t;
}

val num_elements : int list -> int
val strides_of : int list -> int array

val shape_equal : int list -> int list -> bool
(** Dimension-wise integer equality (no polymorphic compare). *)

val alloc : int -> data
(** Fresh uninitialized float64 storage of [n] elements. *)

val create : ?dtype:Dtype.t -> int list -> float -> t
val zeros : ?dtype:Dtype.t -> int list -> t
val init : ?dtype:Dtype.t -> int list -> (int array -> float) -> t

val random : ?dtype:Dtype.t -> seed:int -> int list -> t
(** Deterministic pseudo-random values in [-1, 1). *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val of_buffer : Buffer.t -> t
val map : (float -> float) -> t -> t

val max_abs_diff : t -> t -> float
val allclose : ?atol:float -> ?rtol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
