(** Per-threadblock event traces extracted from kernel IR.

    The timing simulator replays the sequence of loads, computes and
    synchronization points one threadblock executes. Grid loop variables are
    pinned to zero (every threadblock runs the same program) and
    warp-parallel loops are aggregated (event bytes/FLOPs are summed across
    the warps of a threadblock).

    Scope-synchronized pipelines take their commit/wait structure directly
    from the IR's primitives; register-level pipelines have no explicit
    primitives — the hardware scoreboard stalls the consumer — so the
    extractor synthesizes the equivalent batches: a compute event waits
    until all batches except the youngest [stages-1] have completed.

    The boxed {!event} type is the public/debug view. The simulator's hot
    path runs on the packed {!program} representation — parallel int arrays
    with an interned group table and precomputed batch ordinals — produced
    directly by {!extract_program} with no per-event boxing. *)

open Alcop_ir

type level =
  | From_global
  | From_shared

type event =
  | Load of { level : level; bytes : int; async : bool; group : string option }
  | Store of { bytes : int }
  | Commit of { group : string; sync : bool }
      (** [sync] distinguishes scope-synchronized pipeline commits from
          scoreboard-synthesized register-pipeline ones *)
  | Wait_oldest of { group : string; sync : bool }
  | Acquire of { group : string; stages : int }
  | Release of string
  | Barrier
  | Compute of { flops : int }

val pp_event : Format.formatter -> event -> unit

(** {1 Packed programs}

    Struct-of-arrays encoding: event [i] is described by [opcode.{i}],
    [arg.{i}], [group.{i}], [flags.{i}] and [batch.{i}]. Pipeline groups
    are interned into [groups]; [group.{i}] is an index into it, [-1] when
    the event has no group. *)

(** Opcodes (values of [opcode.{i}]). *)

val op_load : int
val op_store : int
val op_commit : int
val op_wait : int
val op_acquire : int
val op_release : int
val op_barrier : int
val op_compute : int

(** Flag bits (values or-ed into [flags.{i}]). *)

val flag_async : int
val flag_shared : int

val flag_sync_group : int
(** Set on commit/wait/acquire/release events of scope-synchronized
    pipeline groups; clear on the synthesized commit/wait pairs of
    register ("soft") pipelines. Ignored by the simulator — carried for
    decoded views and the pipeline observatory. *)

type icol = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A program column. Bigarray storage is malloc'd outside the OCaml heap,
    so emitting a program costs a handful of mallocs plus a memcpy rather
    than major-heap allocations (whose GC pacing debt dominated
    extraction). *)

type program = {
  n : int;  (** event count *)
  opcode : icol;
  arg : icol;
      (** load/store: bytes; compute: FLOPs; acquire: stages; wait: index
          of the committed batch it consumes, [-1] when the wait fires
          before any commit (it then waits on nothing) *)
  group : icol;  (** index into [groups], [-1] = no group *)
  flags : icol;
  batch : icol;
      (** precomputed batch ordinal within the event's group: for async
          grouped loads the batch they join, for commits the batch they
          close, for waits their consumption ordinal; [-1] otherwise.
          Program-static because every threadblock runs the same program. *)
  groups : string array;  (** interned pipeline-group ids *)
  group_depth : int array;
      (** per group: peak committed-but-unconsumed batches (ring capacity
          a replay needs), always [>= 1] *)
  group_stages : int array;
      (** per group: the pipeline stage count the pass planned (exact on
          the {!extract_program} path; for {!pack}-built traces the max
          acquire argument, falling back to the observed ring depth) *)
  group_sync : bool array;
      (** per group: [true] for scope-synchronized pipelines, [false] for
          scoreboard-synthesized register pipelines *)
  group_bytes : int array;
      (** per group: bytes one pipeline stage occupies — the pass's
          per-stage buffer footprint on the {!extract_program} path, the
          peak per-batch async-load byte sum for {!pack}-built traces;
          [0] when unknown *)
  mutable hash : string;  (** internal memo for {!program_hash}; [""] unset *)
}

val length : program -> int

val extract_program :
  groups:Alcop_pipeline.Analysis.group list -> Kernel.t -> program
(** Extract the packed trace of one representative threadblock. [groups]
    must be the pipeline groups the pass reported for this kernel (empty
    for unpipelined kernels). This is the allocation-lean primary path:
    the kernel body is resolved once into a slot-indexed closure tree,
    then executed straight into int buffers. *)

val extract :
  groups:Alcop_pipeline.Analysis.group list -> Kernel.t -> event array
(** [decode] of {!extract_program} — the boxed debug view. *)

val pack : event array -> program
(** Pack a boxed event sequence (computes batch ordinals and ring depths
    the same way {!extract_program} does). Intended for tests and
    hand-built traces. *)

val decode : program -> event array

val event_at : program -> int -> event
(** Decode a single event (for [pp_event] and spot debugging). *)

val program_hash : program -> string
(** Content digest of the packed encoding (group table included), memoized
    on first use. Two programs with equal hashes are, up to MD5 collision,
    the same event sequence — the incremental re-simulation key. *)

type stats = {
  global_load_bytes : int;
  shared_load_bytes : int;
  store_bytes : int;
  flops : int;
  n_events : int;
}

val stats_of : event array -> stats
val stats_of_program : program -> stats
