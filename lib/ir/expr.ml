(* Integer index expressions.

   Loop extents, buffer offsets and the pipelining pass's shifted / wrapped
   indices (e.g. [(ko + 2) mod 3]) are all values of this type. Division and
   modulo follow the "floor" convention and are only ever applied to
   non-negative operands by construction, which matches CUDA index
   arithmetic on unsigned loop variables. *)

type t =
  | Const of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Min of t * t
  | Max of t * t

let rec equal a b =
  match a, b with
  | Const x, Const y -> x = y
  | Var x, Var y -> String.equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2)
  | Mod (a1, a2), Mod (b1, b2)
  | Min (a1, a2), Min (b1, b2)
  | Max (a1, a2), Max (b1, b2) -> equal a1 b1 && equal a2 b2
  | (Const _ | Var _ | Add _ | Sub _ | Mul _ | Div _ | Mod _ | Min _ | Max _), _
    -> false

let const n = Const n
let var v = Var v
let zero = Const 0
let one = Const 1

(* Smart constructors perform light constant folding so transformed IR stays
   readable: the pipelining pass composes many [+ c] and [mod c] operations
   and without folding the output would be noise. *)

let rec add a b =
  match a, b with
  | Const 0, e | e, Const 0 -> e
  | Const x, Const y -> Const (x + y)
  | Add (e, Const x), Const y -> add e (Const (x + y))
  | Const x, Add (e, Const y) -> add e (Const (x + y))
  | e, Const x -> Add (e, Const x)
  | Const x, e -> Add (e, Const x)
  | _ -> Add (a, b)

let sub a b =
  match a, b with
  | e, Const 0 -> e
  | Const x, Const y -> Const (x - y)
  | _ -> Sub (a, b)

let mul a b =
  match a, b with
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, e | e, Const 1 -> e
  | Const x, Const y -> Const (x * y)
  | _ -> Mul (a, b)

let floordiv_int a b =
  if b = 0 then invalid_arg "Expr: division by zero"
  else if (a < 0) <> (b < 0) && a mod b <> 0 then (a / b) - 1
  else a / b

let floormod_int a b = a - (b * floordiv_int a b)

let div a b =
  match a, b with
  | e, Const 1 -> e
  | Const x, Const y when y <> 0 -> Const (floordiv_int x y)
  | _ -> Div (a, b)

(* Drop additive terms that are multiples of [n] — they cannot affect a
   [mod n]: turns ((ko * E + ki) + 1) mod n into (ki + 1) mod n when n
   divides E, recovering the concise rolling indices of paper Fig. 7. *)
let rec drop_multiples n e =
  match e with
  | Const c -> Const (floormod_int c n)
  | Mul (_, Const a) when a mod n = 0 -> Const 0
  | Mul (Const a, _) when a mod n = 0 -> Const 0
  | Add (x, y) -> add (drop_multiples n x) (drop_multiples n y)
  | Var _ | Mul _ | Sub _ | Div _ | Mod _ | Min _ | Max _ -> e

and modulo a b =
  match a, b with
  | _, Const 1 -> Const 0
  | Const x, Const y when y <> 0 -> Const (floormod_int x y)
  | Mod (e, Const x), Const y when x = y -> Mod (e, Const x)
  | _, Const n when n > 1 ->
    (match drop_multiples n a with
     | Const x -> Const (floormod_int x n)
     | reduced -> Mod (reduced, Const n))
  | _ -> Mod (a, b)

let min_ a b =
  match a, b with
  | Const x, Const y -> Const (min x y)
  | _ -> if equal a b then a else Min (a, b)

let max_ a b =
  match a, b with
  | Const x, Const y -> Const (max x y)
  | _ -> if equal a b then a else Max (a, b)

let rec eval env = function
  | Const n -> n
  | Var v ->
    (match env v with
     | Some n -> n
     | None -> raise (Invalid_argument ("Expr.eval: unbound variable " ^ v)))
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) -> floordiv_int (eval env a) (eval env b)
  | Mod (a, b) -> floormod_int (eval env a) (eval env b)
  | Min (a, b) -> min (eval env a) (eval env b)
  | Max (a, b) -> max (eval env a) (eval env b)

let eval_const e =
  match eval (fun _ -> None) e with
  | n -> Some n
  | exception Invalid_argument _ -> None

(* Sharing-preserving: a subtree that does not mention [name] comes back
   physically unchanged (expressions are built through the smart
   constructors, so an untouched subtree is already folded and there is
   nothing to re-simplify). *)
let rec subst name replacement expr =
  let s = subst name replacement in
  let node2 mk a b =
    let a' = s a in
    let b' = s b in
    if a' == a && b' == b then expr else mk a' b'
  in
  match expr with
  | Const _ -> expr
  | Var v -> if String.equal v name then replacement else expr
  | Add (a, b) -> node2 add a b
  | Sub (a, b) -> node2 sub a b
  | Mul (a, b) -> node2 mul a b
  | Div (a, b) -> node2 div a b
  | Mod (a, b) -> node2 modulo a b
  | Min (a, b) -> node2 min_ a b
  | Max (a, b) -> node2 max_ a b

let rec free_vars acc = function
  | Const _ -> acc
  | Var v -> if List.mem v acc then acc else v :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
  | Min (a, b) | Max (a, b) -> free_vars (free_vars acc a) b

let free_vars e = List.rev (free_vars [] e)

let mentions name e = List.mem name (free_vars e)

(* Rebuild an expression through the smart constructors; folds constants that
   became foldable after substitution. *)
let rec simplify = function
  | (Const _ | Var _) as e -> e
  | Add (a, b) -> add (simplify a) (simplify b)
  | Sub (a, b) -> sub (simplify a) (simplify b)
  | Mul (a, b) -> mul (simplify a) (simplify b)
  | Div (a, b) -> div (simplify a) (simplify b)
  | Mod (a, b) -> modulo (simplify a) (simplify b)
  | Min (a, b) -> min_ (simplify a) (simplify b)
  | Max (a, b) -> max_ (simplify a) (simplify b)

let precedence = function
  | Const _ | Var _ -> 3
  | Mul _ | Div _ | Mod _ -> 2
  | Add _ | Sub _ -> 1
  | Min _ | Max _ -> 0

let needs_paren ~parent ~child ~right =
  precedence child < precedence parent
  ||
  (* Same-precedence cases that read ambiguously without parentheses. *)
  (match parent, child with
   | (Mul _ | Div _ | Mod _), (Div _ | Mod _) -> true
   | Sub _, (Add _ | Sub _) -> right
   | _ -> false)

let rec pp fmt e =
  let operand right child =
    if needs_paren ~parent:e ~child ~right then
      Format.fprintf fmt "(%a)" pp child
    else pp fmt child
  in
  let binop a op b =
    operand false a;
    Format.pp_print_string fmt op;
    operand true b
  in
  match e with
  | Const n -> Format.pp_print_int fmt n
  | Var v -> Format.pp_print_string fmt v
  | Add (a, b) -> binop a " + " b
  | Sub (a, b) -> binop a " - " b
  | Mul (a, b) -> binop a " * " b
  | Div (a, b) -> binop a " / " b
  | Mod (a, b) -> binop a " % " b
  | Min (a, b) -> Format.fprintf fmt "min(%a, %a)" pp a pp b
  | Max (a, b) -> Format.fprintf fmt "max(%a, %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e
