(* Structural validation of kernels.

   The pipelining pass relies on well-formed input (paper Sec. II calls this
   the "safety check of the preceding module"); the checks here are run on
   both the lowered input IR and the pipelined output IR in tests, so a
   transformation bug that produces malformed programs is caught before the
   interpreter ever runs. Dynamic properties (indices in bounds, data races
   on asynchronous copies) are checked by the interpreter instead. *)

type error = {
  context : string;
  message : string;
}

let error context fmt = Format.kasprintf (fun message -> { context; message }) fmt

let pp_error fmt e = Format.fprintf fmt "[%s] %s" e.context e.message

exception Invalid of error list

type env = {
  buffers : (string * Buffer.t) list;
  loop_vars : string list;
}

let find_buffer env name = List.assoc_opt name env.buffers

(* Fast path for the common all-bound case: scan without materializing the
   free-variable list. Only when a variable is actually unbound do we fall
   back to [Expr.free_vars], whose dedup/order the error messages rely on. *)
let rec all_vars_bound vars e =
  match e with
  | Expr.Const _ -> true
  | Expr.Var v -> List.mem v vars
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b)
  | Expr.Mod (a, b) | Expr.Min (a, b) | Expr.Max (a, b) ->
    all_vars_bound vars a && all_vars_bound vars b

let check_region env ~context errs (r : Stmt.region) =
  match find_buffer env r.Stmt.buffer with
  | None ->
    error context "region references undeclared buffer %s" r.Stmt.buffer :: errs
  | Some b ->
    let errs =
      if List.length r.Stmt.slices <> Buffer.rank b then
        error context "region on %s has rank %d but buffer has rank %d"
          r.Stmt.buffer
          (List.length r.Stmt.slices)
          (Buffer.rank b)
        :: errs
      else
        List.fold_left2
          (fun errs (s : Stmt.slice) dim ->
            if s.Stmt.len <= 0 then
              error context "region on %s has non-positive slice length %d"
                r.Stmt.buffer s.Stmt.len
              :: errs
            else if s.Stmt.len > dim then
              error context "region on %s has slice length %d > dimension %d"
                r.Stmt.buffer s.Stmt.len dim
              :: errs
            else errs)
          errs r.Stmt.slices b.Buffer.shape
    in
    let check_var errs v =
      if List.mem v env.loop_vars then errs
      else
        error context "region on %s uses unbound variable %s" r.Stmt.buffer v
        :: errs
    in
    List.fold_left
      (fun errs (s : Stmt.slice) ->
        if all_vars_bound env.loop_vars s.Stmt.offset then errs
        else List.fold_left check_var errs (Expr.free_vars s.Stmt.offset))
      errs r.Stmt.slices

let region_scope env (r : Stmt.region) =
  Option.map (fun b -> b.Buffer.scope) (find_buffer env r.Stmt.buffer)

let rec check_stmt env errs stmt =
  match stmt with
  | Stmt.Seq ss -> List.fold_left (check_stmt env) errs ss
  | Stmt.For { var; extent; body; _ } ->
    let errs =
      if List.mem var env.loop_vars then
        error "for" "loop variable %s shadows an enclosing binding" var :: errs
      else errs
    in
    let errs =
      if all_vars_bound env.loop_vars extent then errs
      else
        List.fold_left
          (fun errs v ->
            if List.mem v env.loop_vars then errs
            else
              error "for" "extent of loop %s uses unbound variable %s" var v
              :: errs)
          errs (Expr.free_vars extent)
    in
    check_stmt { env with loop_vars = var :: env.loop_vars } errs body
  | Stmt.Alloc { buffer; body } ->
    let errs =
      if List.mem_assoc buffer.Buffer.name env.buffers then
        error "alloc" "buffer %s is declared twice" buffer.Buffer.name :: errs
      else errs
    in
    check_stmt
      { env with buffers = (buffer.Buffer.name, buffer) :: env.buffers }
      errs body
  | Stmt.If { cond; then_ } ->
    let errs =
      if
        all_vars_bound env.loop_vars cond.Stmt.lhs
        && all_vars_bound env.loop_vars cond.Stmt.rhs
      then errs
      else
        List.fold_left
          (fun errs v ->
            if List.mem v env.loop_vars then errs
            else error "if" "condition uses unbound variable %s" v :: errs)
          errs
          (Expr.free_vars cond.Stmt.lhs @ Expr.free_vars cond.Stmt.rhs)
    in
    check_stmt env errs then_
  | Stmt.Copy { kind; dst; src; fused } ->
    let errs = check_region env ~context:"copy" errs dst in
    let errs = check_region env ~context:"copy" errs src in
    let errs =
      if
        find_buffer env dst.Stmt.buffer <> None
        && find_buffer env src.Stmt.buffer <> None
        && not (Stmt.copy_shapes_compatible ~dst ~src)
      then
        error "copy" "incompatible shapes: %s <- %s" dst.Stmt.buffer
          src.Stmt.buffer
        :: errs
      else errs
    in
    let errs =
      match kind, fused with
      | Stmt.Async_copy, Some f ->
        (* Paper Fig. 5: a fused element-wise op forces the copy to be
           synchronous; an async copy cannot carry computation. *)
        error "copy" "asynchronous copy cannot carry fused op %s" f :: errs
      | _ -> errs
    in
    (match kind, region_scope env dst with
     | Stmt.Async_copy, Some (Buffer.Shared | Buffer.Register)
     | Stmt.Async_copy, None -> errs
     | Stmt.Async_copy, Some Buffer.Global ->
       (* cp.async writes shared memory; register "async" copies are
          ordinary loads issued early by software pipelining. Global
          destinations cannot be produced asynchronously. *)
       error "copy" "asynchronous copy destination %s is in global scope"
         dst.Stmt.buffer
       :: errs
     | Stmt.Sync_copy, _ -> errs)
  | Stmt.Fill { dst; _ } -> check_region env ~context:"fill" errs dst
  | Stmt.Mma { c; a; b } ->
    let errs = check_region env ~context:"mma" errs c in
    let errs = check_region env ~context:"mma" errs a in
    let errs = check_region env ~context:"mma" errs b in
    let scope_ok r =
      match region_scope env r with
      | Some Buffer.Register | None -> true
      | Some (Buffer.Global | Buffer.Shared) -> false
    in
    let errs =
      List.fold_left
        (fun errs r ->
          if scope_ok r then errs
          else
            error "mma" "operand %s must live in register scope" r.Stmt.buffer
            :: errs)
        errs [ c; a; b ]
    in
    (* Shape check: c[m,n] += a[m,k] * b[n,k] on squeezed shapes. *)
    (match Stmt.squeeze_lens c, Stmt.squeeze_lens a, Stmt.squeeze_lens b with
     | [ m; n ], [ m'; k ], [ n'; k' ] when m = m' && n = n' && k = k' -> errs
     | [ m; n ], [ m'; k ], [ n'; k' ] ->
       error "mma" "shape mismatch: c[%d,%d] += a[%d,%d] * b[%d,%d]" m n m' k n' k'
       :: errs
     | _ ->
       error "mma" "operands must be (squeezed) rank-2 regions" :: errs)
  | Stmt.Unop { dst; src; _ } ->
    let errs = check_region env ~context:"unop" errs dst in
    let errs = check_region env ~context:"unop" errs src in
    if
      find_buffer env dst.Stmt.buffer <> None
      && find_buffer env src.Stmt.buffer <> None
      && not (Stmt.copy_shapes_compatible ~dst ~src)
    then
      error "unop" "incompatible shapes: %s <- %s" dst.Stmt.buffer src.Stmt.buffer
      :: errs
    else errs
  | Stmt.Accum { dst; src } ->
    let errs = check_region env ~context:"accum" errs dst in
    let errs = check_region env ~context:"accum" errs src in
    if
      find_buffer env dst.Stmt.buffer <> None
      && find_buffer env src.Stmt.buffer <> None
      && not (Stmt.copy_shapes_compatible ~dst ~src)
    then
      error "accum" "incompatible shapes: %s += %s" dst.Stmt.buffer
        src.Stmt.buffer
      :: errs
    else errs
  | Stmt.Sync _ -> errs

let check (k : Kernel.t) =
  let env =
    { buffers =
        List.map (fun (b : Buffer.t) -> (b.Buffer.name, b)) (Kernel.params k);
      loop_vars = [] }
  in
  match List.rev (check_stmt env [] k.Kernel.body) with
  | [] -> Ok ()
  | errs -> Error errs

let check_exn k =
  match check k with
  | Ok () -> ()
  | Error errs -> raise (Invalid errs)

let errors_to_string errs =
  String.concat "\n" (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)
