(* Statement IR.

   A kernel is the program of one threadblock, wrapped in [For] loops bound
   to grid / warp dimensions. Data movement is expressed at chunk
   granularity ([Copy] moves a rectangular region between buffers), which is
   the granularity the pipelining pass reasons at (paper Fig. 7).

   Synchronization follows the CUDA pipeline API of Ampere: a pipelined
   buffer is guarded by producer_acquire / producer_commit around its
   loading code and consumer_wait / consumer_release around its using code
   (paper Sec. III-B, step 5). [Barrier] is a plain block-wide
   __syncthreads, which is what the unpipelined input IR uses. *)

type slice = {
  offset : Expr.t;
  len : int;
}

type region = {
  buffer : string;
  slices : slice list;
}

type loop_binding =
  | Block_x
  | Block_y
  | Block_z
  | Warp_x
  | Warp_y

type loop_kind =
  | Sequential
  | Parallel of loop_binding
  | Unrolled

type copy_kind =
  | Sync_copy
  | Async_copy

type sync =
  | Barrier
  | Producer_acquire of string
  | Producer_commit of string
  | Consumer_wait of string
  | Consumer_release of string

type cmp =
  | Eq
  | Ne
  | Lt
  | Le

type cond = {
  lhs : Expr.t;
  cmp : cmp;
  rhs : Expr.t;
}

type t =
  | Seq of t list
  | For of { var : string; extent : Expr.t; kind : loop_kind; body : t }
  | Alloc of { buffer : Buffer.t; body : t }
  | If of { cond : cond; then_ : t }
  | Copy of { kind : copy_kind; dst : region; src : region; fused : string option }
  | Fill of { dst : region; value : float }
  | Mma of { c : region; a : region; b : region }
  | Unop of { dst : region; src : region; op : string }
  | Accum of { dst : region; src : region }
      (** dst += src elementwise; the reduction step of split-K kernels *)
  | Sync of sync

(* --- Construction helpers --- *)

let slice offset len = { offset; len }

let region buffer slices = { buffer; slices }

let point_slice offset = { offset; len = 1 }

let full_region (b : Buffer.t) =
  { buffer = b.Buffer.name;
    slices = List.map (fun d -> { offset = Expr.zero; len = d }) b.Buffer.shape }

let seq stmts =
  let rec flatten acc = function
    | [] -> List.rev acc
    | Seq inner :: rest -> flatten (List.rev_append (flatten [] inner) acc) rest
    | s :: rest -> flatten (s :: acc) rest
  in
  match flatten [] stmts with
  | [ s ] -> s
  | ss -> Seq ss

let for_ ?(kind = Sequential) var extent body = For { var; extent; kind; body }

let copy ?(kind = Sync_copy) ?fused ~dst ~src () = Copy { kind; dst; src; fused }

let alloc buffer body = Alloc { buffer; body }

(* --- Region utilities --- *)

let region_lens r = List.map (fun s -> s.len) r.slices

let region_elems r = List.fold_left (fun acc s -> acc * s.len) 1 r.slices

(* Shapes of copy source and destination must agree after dropping
   length-one dimensions; the pipelining pass inserts a length-one stage
   dimension on one side only. *)
let squeeze_lens r = List.filter (fun l -> l <> 1) (region_lens r)

let copy_shapes_compatible ~dst ~src =
  region_elems dst = region_elems src && squeeze_lens dst = squeeze_lens src

let slice_equal a b = Expr.equal a.offset b.offset && a.len = b.len

let region_equal a b =
  String.equal a.buffer b.buffer
  && List.length a.slices = List.length b.slices
  && List.for_all2 slice_equal a.slices b.slices

(* --- Traversal --- *)

let rec iter f stmt =
  f stmt;
  match stmt with
  | Seq ss -> List.iter (iter f) ss
  | For { body; _ } | Alloc { body; _ } | If { then_ = body; _ } -> iter f body
  | Copy _ | Fill _ | Mma _ | Unop _ | Accum _ | Sync _ -> ()

(* [List.map] that returns the input list physically unchanged when [f] is
   the identity on every element — the sharing-preservation trick the
   pipelining pass relies on to avoid rebuilding untouched subtrees. *)
let map_list_sharing f l =
  let rec go l =
    match l with
    | [] -> l
    | x :: tl ->
      let x' = f x in
      let tl' = go tl in
      if x' == x && tl' == tl then l else x' :: tl'
  in
  go l

(* Rebuild a node only when a child actually changed; otherwise return the
   original node so enclosing rewrites can preserve sharing too. *)
let rec map_children f stmt =
  match stmt with
  | Seq ss ->
    let ss' = map_list_sharing f ss in
    if ss' == ss then stmt else Seq ss'
  | For r ->
    let body = f r.body in
    if body == r.body then stmt else For { r with body }
  | Alloc r ->
    let body = f r.body in
    if body == r.body then stmt else Alloc { r with body }
  | If r ->
    let then_ = f r.then_ in
    if then_ == r.then_ then stmt else If { r with then_ }
  | Copy _ | Fill _ | Mma _ | Unop _ | Accum _ | Sync _ -> stmt

and map f stmt = f (map_children (map f) stmt)

let rec fold f acc stmt =
  let acc = f acc stmt in
  match stmt with
  | Seq ss -> List.fold_left (fold f) acc ss
  | For { body; _ } | Alloc { body; _ } | If { then_ = body; _ } ->
    fold f acc body
  | Copy _ | Fill _ | Mma _ | Unop _ | Accum _ | Sync _ -> acc

let allocs stmt =
  List.rev
    (fold
       (fun acc s -> match s with Alloc { buffer; _ } -> buffer :: acc | _ -> acc)
       [] stmt)

let find_alloc stmt name =
  List.find_opt (fun b -> String.equal b.Buffer.name name) (allocs stmt)

let loop_vars stmt =
  List.rev
    (fold
       (fun acc s -> match s with For { var; _ } -> var :: acc | _ -> acc)
       [] stmt)

(* Substitute an index variable throughout all expressions of a statement.
   Sharing-preserving: subtrees that never mention the variable come back
   physically unchanged. *)
let subst_var name replacement stmt =
  let in_expr e = Expr.subst name replacement e in
  let in_slice s =
    let offset = in_expr s.offset in
    if offset == s.offset then s else { s with offset }
  in
  let in_region r =
    let slices = map_list_sharing in_slice r.slices in
    if slices == r.slices then r else { r with slices }
  in
  let in_cond c =
    let lhs = in_expr c.lhs in
    let rhs = in_expr c.rhs in
    if lhs == c.lhs && rhs == c.rhs then c else { c with lhs; rhs }
  in
  let rewrite stmt =
    match stmt with
    | Copy c ->
      let dst = in_region c.dst in
      let src = in_region c.src in
      if dst == c.dst && src == c.src then stmt else Copy { c with dst; src }
    | Fill f ->
      let dst = in_region f.dst in
      if dst == f.dst then stmt else Fill { f with dst }
    | Mma m ->
      let c = in_region m.c in
      let a = in_region m.a in
      let b = in_region m.b in
      if c == m.c && a == m.a && b == m.b then stmt else Mma { c; a; b }
    | Unop u ->
      let dst = in_region u.dst in
      let src = in_region u.src in
      if dst == u.dst && src == u.src then stmt else Unop { u with dst; src }
    | Accum a ->
      let dst = in_region a.dst in
      let src = in_region a.src in
      if dst == a.dst && src == a.src then stmt else Accum { dst; src }
    | For r ->
      let extent = in_expr r.extent in
      if extent == r.extent then stmt else For { r with extent }
    | If r ->
      let cond = in_cond r.cond in
      if cond == r.cond then stmt else If { r with cond }
    | Seq _ | Alloc _ | Sync _ -> stmt
  in
  map rewrite stmt

(* --- Statistics used by tests and the simulator --- *)

let count pred stmt = fold (fun acc s -> if pred s then acc + 1 else acc) 0 stmt

let count_copies ?kind stmt =
  count
    (function
      | Copy c -> (match kind with None -> true | Some k -> c.kind = k)
      | _ -> false)
    stmt

let count_syncs stmt = count (function Sync _ -> true | _ -> false) stmt

let count_mmas stmt = count (function Mma _ -> true | _ -> false) stmt

(* --- Pretty printing (paper Fig. 7 style) --- *)

let binding_to_string = function
  | Block_x -> "blockIdx.x"
  | Block_y -> "blockIdx.y"
  | Block_z -> "blockIdx.z"
  | Warp_x -> "warpIdx.x"
  | Warp_y -> "warpIdx.y"

let cmp_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="

let pp_slice fmt s =
  if s.len = 1 then Format.fprintf fmt "%a" Expr.pp s.offset
  else if Expr.equal s.offset Expr.zero then Format.fprintf fmt "0:%d" s.len
  else Format.fprintf fmt "%a:+%d" Expr.pp s.offset s.len

let pp_region fmt r =
  Format.fprintf fmt "%s[%a]" r.buffer
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_slice)
    r.slices

let pp_cond fmt c =
  Format.fprintf fmt "%a %s %a" Expr.pp c.lhs (cmp_to_string c.cmp) Expr.pp c.rhs

let rec pp fmt stmt =
  match stmt with
  | Seq ss ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_cut fmt ())
      pp fmt ss
  | For { var; extent; kind; body } ->
    let prefix =
      match kind with
      | Sequential -> ""
      | Parallel b -> Printf.sprintf " @%s" (binding_to_string b)
      | Unrolled -> " unroll"
    in
    Format.fprintf fmt "@[<v 2>for%s %s in 0 .. %a:@,%a@]" prefix var Expr.pp
      extent pp body
  | Alloc { buffer; body } ->
    Format.fprintf fmt "@[<v>alloc %a@,%a@]" Buffer.pp buffer pp body
  | If { cond; then_ } ->
    Format.fprintf fmt "@[<v 2>if %a:@,%a@]" pp_cond cond pp then_
  | Copy { kind; dst; src; fused } ->
    let name =
      match kind with Sync_copy -> "memcpy" | Async_copy -> "async_memcpy"
    in
    let fused_str = match fused with None -> "" | Some f -> " with " ^ f in
    Format.fprintf fmt "%s(%a, %a)%s" name pp_region dst pp_region src fused_str
  | Fill { dst; value } ->
    Format.fprintf fmt "fill(%a, %g)" pp_region dst value
  | Mma { c; a; b } ->
    Format.fprintf fmt "mma(%a += %a * %a)" pp_region c pp_region a pp_region b
  | Unop { dst; src; op } ->
    Format.fprintf fmt "%s(%a, %a)" op pp_region dst pp_region src
  | Accum { dst; src } ->
    Format.fprintf fmt "accum(%a += %a)" pp_region dst pp_region src
  | Sync s ->
    (match s with
     | Barrier -> Format.pp_print_string fmt "__syncthreads()"
     | Producer_acquire b -> Format.fprintf fmt "%s.producer_acquire()" b
     | Producer_commit b -> Format.fprintf fmt "%s.producer_commit()" b
     | Consumer_wait b -> Format.fprintf fmt "%s.consumer_wait()" b
     | Consumer_release b -> Format.fprintf fmt "%s.consumer_release()" b)

let to_string stmt = Format.asprintf "@[<v>%a@]" pp stmt
