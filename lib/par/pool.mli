(** A fixed-size domain pool with deterministic-order results and exact
    telemetry merge.

    Hand-rolled on stdlib [Domain] + [Mutex]/[Condition] (no domainslib):
    [jobs] worker domains block on a shared task queue; batch operations
    ([map], [map_array], [parallel_for]) enqueue one thunk per work item
    (or chunk), wait for the batch, then consume results {e in item
    order} on the calling domain.

    Determinism contract (see doc/parallelism.md): every task runs under
    {!Alcop_obs.Obs.capturing}, so its telemetry lands in a domain-local
    shard instead of the global tables; the coordinator replays shard
    [i]'s ops immediately before delivering result [i]. Whatever the
    scheduling interleaving was, the observable outcome — result array,
    callback order, counter totals, gauge values, histogram contents,
    emitted event stream — is identical to sequential execution. With
    [jobs = 1] no domains are spawned at all and work runs inline, which
    is the baseline the parallel paths are byte-compared against.

    Pools must not be nested: a task running on a worker must not submit
    to any pool (it would deadlock once all workers wait on each other).
    Route only coarse outer loops through a pool and keep inner work
    sequential.

    The pool is also instrumented with {!Alcop_obs.Hostprof} probes
    (worker tracks named [worker-i], idle intervals around the queue
    wait, [pool.queue]/[pool.batch] lock probes, per-task queue-latency
    tokens). These record to per-domain shards outside the
    capture/replay path, so host profiling never affects the
    determinism contract above; see doc/hostprof.md. *)

type t

val default_jobs : unit -> int
(** The [ALCOP_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    [jobs = 1] spawns nothing — every batch operation runs inline on the
    caller. Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Signal the workers to exit and join them. Idempotent; the pool must
    be idle (no batch in flight). A pool that is never shut down keeps
    its domains blocked on the queue until process exit. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, and [shutdown] even on exceptions. *)

val map_array : ?each:(int -> 'b -> unit) -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Apply [f] to every element across the pool. Results are delivered in
    index order: for each [i] in [0..n-1] the coordinator first replays
    item [i]'s captured telemetry, then calls [each i result] (when
    given). If any task raised, the exception of the {e lowest-indexed}
    failing item is re-raised (with its original backtrace) after the
    telemetry of all lower-indexed items has been replayed — matching
    where a sequential run would have stopped; telemetry of
    higher-indexed items (speculatively executed in parallel) is
    dropped. *)

val map : ?each:(int -> 'b -> unit) -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} for lists, preserving order. *)

val parallel_for :
  ?chunk:int ->
  t ->
  n:int ->
  init:(unit -> 's) ->
  body:('s -> int -> 's) ->
  merge:('s -> 's -> 's) ->
  neutral:'s ->
  's
(** Chunked indexed loop with per-chunk worker state: indices
    [0..n-1] are split into contiguous chunks of [chunk] (default
    [max 1 (ceil (n/32))] — independent of [jobs], so the chunk
    partition and therefore the fold shape never changes with
    parallelism); each chunk folds [body] over its indices starting from
    a fresh [init ()], and chunk states are combined left-to-right in
    chunk order as [merge (merge neutral s0) s1 ...]. Deterministic for
    any [init]/[body]/[merge]; telemetry is captured and replayed per
    chunk like {!map_array}. *)
