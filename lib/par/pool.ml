(* Fixed-size domain pool. The scheduling core is deliberately tiny: one
   mutex-guarded queue of [unit -> unit] thunks, workers blocked on a
   condition variable, and a per-batch remaining-counter so the
   coordinator can wait for exactly its own batch. Determinism does not
   come from scheduling (tasks complete in any order) but from the
   consume side: results land in a pre-sized slot array by index, and the
   coordinator walks the slots in order, replaying each task's captured
   telemetry (Obs.capturing / Obs.replay) right before delivering its
   result. *)

module Obs = Alcop_obs.Obs
module Hostprof = Alcop_obs.Hostprof

(* Host-profiler probes (doc/hostprof.md). These write to per-domain
   shards outside the capture/replay path, so instrumenting the pool's
   own machinery cannot perturb the determinism contract below. *)
let queue_probe = Hostprof.make_lock "pool.queue"
let batch_probe = Hostprof.make_lock "pool.batch"

type t = {
  pool_jobs : int;
  lock : Mutex.t;
  work : Condition.t;  (* queue non-empty, or shutting down *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Option.bind (Sys.getenv_opt "ALCOP_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> Domain.recommended_domain_count ()

let jobs t = t.pool_jobs

let worker_loop t i =
  Hostprof.set_role (Printf.sprintf "worker-%d" i);
  let rec next () =
    Hostprof.lock_acquire queue_probe t.lock;
    while Queue.is_empty t.queue && not t.stop do
      (* blocked waiting for work: an idle interval on this worker's
         host-profile track (the wait releases [t.lock]) *)
      Hostprof.idle (fun () -> Condition.wait t.work t.lock)
    done;
    match Queue.take_opt t.queue with
    | Some task ->
      Mutex.unlock t.lock;
      task ();
      next ()
    | None -> Mutex.unlock t.lock (* stop, queue drained *)
  in
  next ()

let create ?jobs () =
  let pool_jobs =
    match jobs with Some n -> n | None -> default_jobs ()
  in
  if pool_jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs = %d (must be >= 1)" pool_jobs);
  let t =
    { pool_jobs; lock = Mutex.create (); work = Condition.create ();
      queue = Queue.create (); stop = false; workers = [] }
  in
  if pool_jobs > 1 then
    t.workers <-
      List.init pool_jobs (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Enqueue the thunks and block until all of them ran. Thunks must not
   raise — batch builders wrap the user function in [Obs.capturing],
   which already converts exceptions into values. *)
let run_batch ?(label = "pool.task") t thunks =
  match thunks with
  | [] -> ()
  | _ ->
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref (List.length thunks) in
    let wrap thunk =
      (* wrap-time = enqueue-time (just before [Queue.add] below); the
         token lets the profiler report enqueue->start queue latency *)
      let enqueue = Hostprof.task_enqueued () in
      fun () ->
        Hostprof.task ~enqueue ~label thunk;
        Hostprof.lock_acquire batch_probe batch_lock;
        decr remaining;
        if !remaining = 0 then Condition.signal batch_done;
        Mutex.unlock batch_lock
    in
    Hostprof.lock_acquire queue_probe t.lock;
    List.iter (fun thunk -> Queue.add (wrap thunk) t.queue) thunks;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Hostprof.lock_acquire batch_probe batch_lock;
    Hostprof.batch_wait (fun () ->
        while !remaining > 0 do
          Condition.wait batch_done batch_lock
        done);
    Mutex.unlock batch_lock

type ('b) slot = ('b, exn * Printexc.raw_backtrace) result * Obs.recorded

let deliver ?each i (outcome, recorded) =
  Obs.replay recorded;
  match outcome with
  | Ok y ->
    (match each with Some g -> g i y | None -> ());
    y
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map_array ?each t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.pool_jobs = 1 || n = 1 then
    (* Inline: no capture, no replay — the canonical sequential order. *)
    Array.mapi
      (fun i x ->
        let y = Hostprof.task ~label:"pool.task" (fun () -> f x) in
        (match each with Some g -> g i y | None -> ());
        y)
      xs
  else begin
    let slots : 'b slot option array = Array.make n None in
    let thunks =
      List.init n (fun i () ->
          let outcome, recorded = Obs.capturing (fun () -> f xs.(i)) in
          (* Distinct slots per task; the batch counter's mutex publishes
             the writes to the coordinator. *)
          slots.(i) <- Some (outcome, recorded))
    in
    run_batch ~label:"pool.task" t thunks;
    Array.mapi
      (fun i _ ->
        match slots.(i) with
        | Some slot -> deliver ?each i slot
        | None -> assert false)
      xs
  end

let map ?each t f xs = Array.to_list (map_array ?each t f (Array.of_list xs))

let parallel_for ?chunk t ~n ~init ~body ~merge ~neutral =
  if n <= 0 then neutral
  else begin
    (* Chunk size must not depend on [jobs]: the chunk partition fixes
       the shape of the init/fold/merge tree, and that shape has to be
       identical across -j values for bit-identical results. *)
    let csize =
      match chunk with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_for: chunk = %d" c)
      | None -> max 1 ((n + 31) / 32)
    in
    let nchunks = (n + csize - 1) / csize in
    let run_chunk ci =
      let lo = ci * csize in
      let hi = min n (lo + csize) in
      let s = ref (init ()) in
      for i = lo to hi - 1 do
        s := body !s i
      done;
      !s
    in
    if t.pool_jobs = 1 || nchunks = 1 then begin
      let acc = ref neutral in
      for ci = 0 to nchunks - 1 do
        acc :=
          merge !acc (Hostprof.task ~label:"pool.chunk" (fun () -> run_chunk ci))
      done;
      !acc
    end
    else begin
      let slots : 's slot option array = Array.make nchunks None in
      let thunks =
        List.init nchunks (fun ci () ->
            let outcome, recorded = Obs.capturing (fun () -> run_chunk ci) in
            slots.(ci) <- Some (outcome, recorded))
      in
      run_batch ~label:"pool.chunk" t thunks;
      let acc = ref neutral in
      for ci = 0 to nchunks - 1 do
        match slots.(ci) with
        | Some slot -> acc := merge !acc (deliver ci slot)
        | None -> assert false
      done;
      !acc
    end
  end
