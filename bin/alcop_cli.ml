(* alcop: command-line interface to the compiler.

     alcop ops                       -- list the built-in operator suite
     alcop show MM_RN50_FC           -- print input and pipelined IR
     alcop time MM_RN50_FC           -- simulate one schedule, with breakdown
     alcop profile MM_RN50_FC        -- per-stage stall attribution + trace
     alcop tune MM_RN50_FC -m xgb+   -- run a tuner
     alcop verify <op>               -- functional check on a small operator

   Operators are either suite names (see `alcop ops`) or ad-hoc shapes via
   --shape BxMxNxK / --shape MxNxK. *)

open Cmdliner
open Alcop

let hw = Alcop_hw.Hw_config.default

(* --- shared argument parsing --- *)

let spec_of_string s =
  match Alcop_workloads.Suites.find s with
  | Some spec -> Ok spec
  | None ->
    (match List.map int_of_string (String.split_on_char 'x' s) with
     | [ m; n; k ] ->
       Ok (Alcop_sched.Op_spec.matmul ~name:s ~m ~n ~k ())
     | [ b; m; n; k ] ->
       Ok (Alcop_sched.Op_spec.batched_matmul ~name:s ~batch:b ~m ~n ~k ())
     | _ | (exception _) ->
       Error
         (`Msg
            (Printf.sprintf
               "unknown operator %s (not in the suite, not MxNxK / BxMxNxK)" s)))

let spec_conv =
  Arg.conv
    ( spec_of_string,
      fun fmt spec -> Alcop_sched.Op_spec.pp fmt spec )

let spec_arg =
  Arg.(required & pos 0 (some spec_conv) None
       & info [] ~docv:"OP" ~doc:"Operator: a suite name or MxNxK / BxMxNxK.")

let tiling_term =
  let open Term in
  let tb =
    Arg.(value & opt (t3 ~sep:'x' int int int) (64, 64, 32)
         & info [ "tb" ] ~docv:"MxNxK" ~doc:"Threadblock tile.")
  in
  let warp =
    Arg.(value & opt (t3 ~sep:'x' int int int) (32, 32, 16)
         & info [ "warp" ] ~docv:"MxNxK" ~doc:"Warp tile.")
  in
  let split =
    Arg.(value & opt int 1
         & info [ "split-k" ] ~doc:"Split-K reduction parallelism (1 = off).")
  in
  const (fun (tb_m, tb_n, tb_k) (warp_m, warp_n, warp_k) split_k ->
      Alcop_sched.Tiling.make ~split_k ~tb_m ~tb_n ~tb_k ~warp_m ~warp_n
        ~warp_k ())
  $ tb $ warp $ split

let stages_term =
  let open Term in
  let smem =
    Arg.(value & opt int 3
         & info [ "smem-stages" ] ~doc:"Shared-memory pipeline stages (1 = off).")
  in
  let reg =
    Arg.(value & opt int 2
         & info [ "reg-stages" ] ~doc:"Register pipeline stages (1 = off).")
  in
  let fuse =
    Arg.(value & opt bool true
         & info [ "inner-fuse" ] ~doc:"Inner-pipeline fusion (Fig. 3d).")
  in
  const (fun smem_stages reg_stages inner_fuse -> (smem_stages, reg_stages, inner_fuse))
  $ smem $ reg $ fuse

let params_term =
  Term.(const (fun tiling (smem_stages, reg_stages, inner_fuse) ->
            Alcop_perfmodel.Params.make ~inner_fuse ~tiling ~smem_stages
              ~reg_stages ())
        $ tiling_term $ stages_term)

(* --- commands --- *)

let ops_cmd =
  let run () =
    List.iter
      (fun spec -> Format.printf "%a@." Alcop_sched.Op_spec.pp spec)
      Alcop_workloads.Suites.fig10;
    Format.printf "%a  (motivating example)@." Alcop_sched.Op_spec.pp
      Alcop_workloads.Suites.motivating
  in
  Cmd.v (Cmd.info "ops" ~doc:"List the built-in operator suite.")
    Term.(const run $ const ())

(* Every CLI compile goes through a [Session]: the shared per-hardware one
   by default, or a pass-through session under --no-cache. The CLI also
   switches the pass manager's post-pass IR validation on — one-shot
   commands can afford the structural check the tuning hot path skips.

   The persistent artifact store is on by default (rooted per --store /
   $ALCOP_STORE / XDG, see [Store.default_root]) so repeated invocations
   skip work across processes; --no-store opts out, and an unwritable
   root degrades to exactly that with a one-line warning. Opening the
   store also installs it as the disk tier behind the simulator's
   wave-reuse cache. *)
let session_of ?store_dir ?(no_store = false) ~no_cache () =
  Passman.set_validate_ir true;
  let store =
    if no_store then None
    else begin
      let st = Store.create ?root:store_dir () in
      if Store.enabled st then begin
        Store.install_wave_persist st;
        Some st
      end
      else None
    end
  in
  let session =
    if no_cache then Session.create ~hw ~cache:false ()
    else Session.for_hw hw
  in
  Session.attach_store session store;
  session

(* One line of store traffic after the session summary, printed by the
   commands that run through [session_of] with the cache on. *)
let print_store_summary session =
  match Session.store session with
  | Some st ->
    let s = Store.stats st in
    Printf.printf
      "artifact store: %d hits / %d misses, %d written, %d corrupt skipped \
       (%s)\n"
      s.Store.hits s.Store.misses s.Store.writes s.Store.corrupt
      (Store.root st)
  | None -> ()

(* -j / --jobs: 0 (the default) resolves via ALCOP_JOBS or the domain
   count. A resolved value of 1 means "no pool at all" — commands pass
   [None] downstream and take the canonical sequential paths. *)
let jobs_term =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for parallel evaluation (0 = $(b,ALCOP_JOBS) \
                 or the recommended domain count). Results are bit-identical \
                 to $(b,-j 1); only wall-clock time changes.")

let with_jobs jobs f =
  let jobs = if jobs <= 0 then Alcop_par.Pool.default_jobs () else jobs in
  if jobs <= 1 then f None
  else Alcop_par.Pool.with_pool ~jobs (fun pool -> f (Some pool))

let with_compiled ?(session = Session.for_hw hw) ?pool params spec f =
  Passman.set_validate_ir true;
  match Session.compile session ?pool params spec with
  | Ok c -> f c
  | Error e ->
    Printf.eprintf "compile error: %s\n" (Compiler.error_to_string e);
    exit 1

(* --dump-ir-after=PASS: print the intermediate kernel right after the
   named pass. Installed before compiling; unknown names are a CLI error
   listing the valid IR-producing passes. *)
let install_dump_ir = function
  | None -> ()
  | Some pass ->
    (match
       Passman.set_dump ~after:pass (fun name kernel ->
           Printf.printf "=== IR after pass %s ===\n%s\n" name
             (Alcop_ir.Kernel.to_string kernel))
     with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "%s\n" msg;
       exit 2)

let dump_ir_term =
  Arg.(value & opt (some string) None
       & info [ "dump-ir-after" ] ~docv:"PASS"
           ~doc:"Print the intermediate kernel IR right after the named \
                 compile pass (IR-producing passes: lower, pipeline).")

let no_cache_term =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Bypass the content-addressed compilation cache.")

let store_dir_term =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Root of the persistent artifact store (default: \
                 $(b,ALCOP_STORE), else $(b,XDG_CACHE_HOME)/alcop, else \
                 ~/.cache/alcop).")

let no_store_term =
  Arg.(value & flag
       & info [ "no-store" ]
           ~doc:"Disable the persistent on-disk artifact store.")

(* File-backed sinks open their file eagerly; turn an unwritable path into a
   clean CLI error instead of an uncaught Sys_error. [reset_at_exit]
   guarantees the sink is closed (file flushed, Chrome trace document
   written) even when a later step exits early — e.g. [with_compiled]'s
   [exit 1] on a compile error. *)
let install_file_sink make path =
  match make path with
  | sink ->
    Alcop_obs.Obs.add_sink sink;
    Alcop_obs.Obs.reset_at_exit ()
  | exception Sys_error msg ->
    Printf.eprintf "cannot open %s: %s\n" path msg;
    exit 1

let show_cmd =
  let run spec params before cuda dump_ir =
    install_dump_ir dump_ir;
    with_compiled params spec (fun c ->
        if before then begin
          print_endline "=== Input IR (unpipelined) ===";
          print_endline
            (Alcop_ir.Kernel.to_string c.Compiler.lowered.Alcop_sched.Lower.kernel);
          print_newline ()
        end;
        if cuda then begin
          print_string
            (Alcop_cuda.Codegen.kernel ~groups:c.Compiler.groups
               c.Compiler.kernel);
          match c.Compiler.lowered.Alcop_sched.Lower.reduce with
          | Some r ->
            print_newline ();
            print_string (Alcop_cuda.Codegen.kernel r)
          | None -> ()
        end
        else begin
          print_endline "=== Pipelined IR ===";
          print_endline (Alcop_ir.Kernel.to_string c.Compiler.kernel);
          List.iter
            (fun (g : Alcop_pipeline.Analysis.group) ->
              Format.printf "group %s: stages=%d loop=%s fused=%b@."
                g.Alcop_pipeline.Analysis.id g.Alcop_pipeline.Analysis.stages
                g.Alcop_pipeline.Analysis.loop_var g.Alcop_pipeline.Analysis.fused)
            c.Compiler.groups
        end)
  in
  let before =
    Arg.(value & flag & info [ "before" ] ~doc:"Also print the unpipelined IR.")
  in
  let cuda =
    Arg.(value & flag
         & info [ "cuda" ] ~doc:"Emit illustrative CUDA C++ instead of IR.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the (pipelined) IR of an operator's kernel.")
    Term.(const run $ spec_arg $ params_term $ before $ cuda $ dump_ir_term)

let time_cmd =
  let print_report spec params latency (t : Alcop_gpusim.Timing.kernel_timing) =
    Printf.printf "schedule:       %s\n"
      (Alcop_perfmodel.Params.to_string params);
    Printf.printf "latency:        %.0f cycles (%.1f us)\n" latency
      (Alcop_hw.Hw_config.cycles_to_us hw latency);
    Printf.printf "waves:          %d (%d TBs/SM, limited by %s)\n"
      t.Alcop_gpusim.Timing.n_waves t.Alcop_gpusim.Timing.tbs_per_sm
      t.Alcop_gpusim.Timing.occupancy_limiter;
    Printf.printf "wave / tail:    %.0f / %.0f cycles\n"
      t.Alcop_gpusim.Timing.wave_cycles t.Alcop_gpusim.Timing.tail_cycles;
    Printf.printf "LLC miss rate:  %.2f\n" t.Alcop_gpusim.Timing.miss_rate;
    Printf.printf "TC utilization: %.0f%%\n"
      (100.0 *. t.Alcop_gpusim.Timing.compute_utilization);
    (match t.Alcop_gpusim.Timing.wave_busy with
     | Some b when b.Alcop_gpusim.Timing.cycles > 0.0 ->
       let frac x = 100.0 *. Float.min 1.0 (x /. b.Alcop_gpusim.Timing.cycles) in
       Printf.printf
         "wave busy:      compute %.0f%% / DRAM %.0f%% / LLC %.0f%% / smem %.0f%%\n"
         (frac b.Alcop_gpusim.Timing.compute_busy)
         (frac b.Alcop_gpusim.Timing.dram_busy)
         (frac b.Alcop_gpusim.Timing.llc_busy)
         (frac b.Alcop_gpusim.Timing.smem_busy)
     | _ -> ());
    Printf.printf "TFLOPS:         %.1f\n"
      (float_of_int (Alcop_sched.Op_spec.flops spec)
       /. (latency /. hw.Alcop_hw.Hw_config.clock_ghz)
       /. 1000.0);
    match Alcop_perfmodel.Model.predict hw spec params with
    | Ok p ->
      Printf.printf "analytical:     %.0f cycles (%s-bound main loop)\n"
        p.Alcop_perfmodel.Model.cycles
        (if p.Alcop_perfmodel.Model.smem_bound then "load" else "compute")
    | Error _ -> ()
  in
  let run spec params trace_out no_cache store_dir no_store jobs =
    (match trace_out with
     | Some path -> install_file_sink Alcop_obs.Sinks.chrome_trace_file path
     | None -> ());
    let session = session_of ?store_dir ~no_store ~no_cache () in
    with_jobs jobs @@ fun pool ->
    let summarize () =
      if not no_cache then begin
        Printf.printf "%s\n" (Session.summary session);
        print_store_summary session
      end
    in
    match trace_out with
    | Some path ->
      (* The Chrome trace wants the real compile phases, so this path
         always compiles fully (it still writes the store through). *)
      with_compiled ~session ?pool params spec (fun c ->
          print_report spec params c.Compiler.latency_cycles c.Compiler.timing;
          summarize ();
          Alcop_obs.Obs.reset ();
          Printf.printf "Chrome trace written to %s (open in chrome://tracing)\n"
            path)
    | None ->
      (* Evaluation-grade query: servable by the in-memory cache, the
         on-disk store (a warm run in a *fresh process* never compiles),
         or a cold compile — whichever tier answers first. *)
      (match Session.timing session ?pool params spec with
       | Ok r ->
         print_report spec params r.Session.latency_cycles r.Session.timing;
         summarize ()
       | Error msg ->
         Printf.eprintf "compile error: %s\n" msg;
         exit 1)
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON file of the compile \
                   phases and simulator gauges.")
  in
  Cmd.v
    (Cmd.info "time" ~doc:"Simulate one schedule and print the breakdown.")
    Term.(const run $ spec_arg $ params_term $ trace_out $ no_cache_term
          $ store_dir_term $ no_store_term $ jobs_term)

(* alcop profile: replay the simulated launch with the recording probe and
   print where every cycle went; optionally export the simulated-time
   Chrome trace and compare the analytical/bottleneck models against the
   simulator over the whole Fig. 10 suite. *)
let profile_cmd =
  let dashboard params =
    Printf.printf
      "\n== model accuracy dashboard (schedule %s) ==\n"
      (Alcop_perfmodel.Params.to_string params);
    Printf.printf "%-14s %12s %12s %12s %10s %10s  %-7s %-10s %s\n" "operator"
      "analytical" "bottleneck" "simulator" "resid(an)" "resid(bt)" "model"
      "sim-stall" "agree";
    let ana_rs = ref [] and btl_rs = ref [] in
    List.iter
      (fun spec ->
        let name = spec.Alcop_sched.Op_spec.name in
        match Session.compile (Session.for_hw hw) params spec with
        | Error e ->
          Printf.printf "%-14s %s\n" name
            ("compile fail: " ^ Compiler.error_kind e)
        | Ok c ->
          let sim = c.Compiler.timing.Alcop_gpusim.Timing.total_cycles in
          let dominant =
            match
              Alcop_gpusim.Profile.run ~op:name ~groups:c.Compiler.groups
                c.Compiler.timing_request
            with
            | Ok p ->
              Alcop_gpusim.Timing.stall_class_name
                (Alcop_gpusim.Profile.dominant_stall p)
            | Error _ -> "?"
          in
          (match Alcop_perfmodel.Model.predict hw spec params with
           | Error f ->
             Format.printf "%-14s model failure: %a@." name
               Alcop_gpusim.Occupancy.pp_failure f
           | Ok m ->
             let ana = m.Alcop_perfmodel.Model.cycles in
             let memory_bound = m.Alcop_perfmodel.Model.smem_bound in
             let r_ana = Alcop_perfmodel.Residual.make ~predicted:ana ~actual:sim in
             ana_rs := r_ana :: !ana_rs;
             let btl = Alcop_perfmodel.Bottleneck.predict_cycles hw spec params in
             let btl_str, resid_btl_str =
               match btl with
               | Some b ->
                 let r = Alcop_perfmodel.Residual.make ~predicted:b ~actual:sim in
                 btl_rs := r :: !btl_rs;
                 ( Printf.sprintf "%12.0f" b,
                   Printf.sprintf "%+9.1f%%"
                     (100.0 *. r.Alcop_perfmodel.Residual.signed_rel) )
               | None -> (Printf.sprintf "%12s" "-", Printf.sprintf "%10s" "-")
             in
             Printf.printf "%-14s %12.0f %s %12.0f %+9.1f%% %s  %-7s %-10s %s\n"
               name ana btl_str sim
               (100.0 *. r_ana.Alcop_perfmodel.Residual.signed_rel)
               resid_btl_str
               (Alcop_perfmodel.Residual.model_bound_name ~memory_bound)
               dominant
               (if Alcop_perfmodel.Residual.bound_agreement ~memory_bound
                     ~sim_stall:dominant
                then "yes" else "NO")))
      Alcop_workloads.Suites.fig10;
    let pct v = 100.0 *. v in
    Printf.printf "mean |residual|: analytical %.1f%%"
      (pct (Alcop_perfmodel.Residual.mean_abs !ana_rs));
    if !btl_rs <> [] then
      Printf.printf "  bottleneck %.1f%%"
        (pct (Alcop_perfmodel.Residual.mean_abs !btl_rs));
    print_newline ()
  in
  let run spec params trace_out jsonl_out compare_model =
    with_compiled params spec (fun c ->
        match
          Alcop_gpusim.Profile.run ~op:spec.Alcop_sched.Op_spec.name
            ~schedule:(Alcop_perfmodel.Params.to_string params)
            ~groups:c.Compiler.groups c.Compiler.timing_request
        with
        | Error f ->
          Format.printf "cannot profile: %a@."
            Alcop_gpusim.Occupancy.pp_failure f;
          exit 1
        | Ok p ->
          print_string (Alcop_gpusim.Profile.report p);
          (match trace_out with
           | Some path ->
             Alcop_gpusim.Profile.write_chrome_trace path p;
             Printf.printf
               "\nChrome trace (simulated time, 1 cycle = 1 us) written to %s\n"
               path
           | None -> ());
          (match jsonl_out with
           | Some path ->
             Alcop_gpusim.Profile.write_jsonl path p;
             Printf.printf "JSONL event log written to %s\n" path
           | None -> ());
          if compare_model then dashboard params)
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON file of *simulated* time: \
                   per-threadblock stall timelines and per-stage async-copy \
                   tracks (open in chrome://tracing or Perfetto).")
  in
  let jsonl_out =
    Arg.(value & opt (some string) None
         & info [ "jsonl-out" ] ~docv:"FILE"
             ~doc:"Write the same profile events as a JSONL log.")
  in
  let compare_model =
    Arg.(value & flag
         & info [ "compare-model" ]
             ~doc:"Append a model-accuracy dashboard: analytical (Table I) \
                   and bottleneck predictions vs. the simulator over the \
                   Fig. 10 suite, with residuals and the stall class each \
                   model's bound assumption gets wrong.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile one schedule inside the simulated GPU: stall \
             attribution per pipeline stage, roofline, and a simulated-time \
             Chrome trace.")
    Term.(const run $ spec_arg $ params_term $ trace_out $ jsonl_out
          $ compare_model)

let method_conv =
  Arg.enum
    [ ("grid", Alcop_tune.Tuner.Grid); ("xgb", Alcop_tune.Tuner.Xgb);
      ("analytical", Alcop_tune.Tuner.Analytical_only);
      ("xgb+", Alcop_tune.Tuner.Analytical_xgb) ]

let tune_cmd =
  let run spec method_ budget seed log log_jsonl no_cache store_dir no_store
      jobs =
    (match log_jsonl with
     | Some path -> install_file_sink Alcop_obs.Sinks.jsonl_file path
     | None -> ());
    let session = session_of ?store_dir ~no_store ~no_cache () in
    let evaluate = Variants.evaluator ~hw ~session Variants.alcop spec in
    let space = Variants.space Variants.alcop spec in
    Printf.printf "space: %d schedules; method: %s; budget: %d\n%!"
      (Array.length space)
      (Alcop_tune.Tuner.method_to_string method_)
      budget;
    let result =
      with_jobs jobs @@ fun pool ->
      Alcop_tune.Tuner.run ?pool ~hw ~spec ~space ~evaluate ~budget ~seed
        method_
    in
    Array.iteri
      (fun i (t : Alcop_tune.Tuner.trial) ->
        Printf.printf "%3d  %-60s %s\n" (i + 1)
          (Alcop_perfmodel.Params.to_string t.Alcop_tune.Tuner.params)
          (match t.Alcop_tune.Tuner.cost with
           | Some c -> Printf.sprintf "%.0f cycles" c
           | None -> "compile fail"))
      result.Alcop_tune.Tuner.trials;
    (match Alcop_tune.Tuner.best result with
     | Some best -> Printf.printf "best in %d trials: %.0f cycles\n" budget best
     | None -> Printf.printf "no trial compiled\n");
    if not no_cache then begin
      Printf.printf "%s\n" (Session.summary session);
      print_store_summary session
    end;
    (match log with
     | Some path ->
       (* Attach the pipeline observatory's per-schedule feature record to
          every measured trial: recompiles are session cache hits, so the
          extra cost is one probe-on wave replay per trial. *)
       let features =
         Array.to_list result.Alcop_tune.Tuner.trials
         |> List.filter_map (fun (t : Alcop_tune.Tuner.trial) ->
                match t.Alcop_tune.Tuner.cost with
                | None -> None
                | Some _ ->
                  (match Session.compile session t.Alcop_tune.Tuner.params spec with
                   | Error _ -> None
                   | Ok c ->
                     (match
                        Alcop_gpusim.Pipeview.run
                          ~op:spec.Alcop_sched.Op_spec.name
                          ~schedule:
                            (Alcop_perfmodel.Params.to_string
                               t.Alcop_tune.Tuner.params)
                          c.Compiler.timing_request
                      with
                      | Ok v ->
                        Some (t.Alcop_tune.Tuner.index,
                              Alcop_gpusim.Pipeview.features v)
                      | Error _ -> None)))
       in
       Alcop_tune.Tuning_log.write_file ~features ~path
         ~spec_name:spec.Alcop_sched.Op_spec.name ~method_ ~seed result;
       Printf.printf "tuning log written to %s\n" path
     | None -> ());
    match log_jsonl with
    | Some path ->
      Alcop_obs.Obs.reset ();
      Printf.printf "JSONL event log written to %s\n" path
    | None -> ()
  in
  let method_ =
    Arg.(value & opt method_conv Alcop_tune.Tuner.Analytical_xgb
         & info [ "m"; "method" ] ~doc:"grid | xgb | analytical | xgb+.")
  in
  let budget =
    Arg.(value & opt int 20 & info [ "budget" ] ~doc:"Measurement budget.")
  in
  let seed = Arg.(value & opt int 2023 & info [ "seed" ] ~doc:"Random seed.") in
  let log =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE" ~doc:"Write a JSON tuning log.")
  in
  let log_jsonl =
    Arg.(value & opt (some string) None
         & info [ "log-jsonl" ] ~docv:"FILE"
             ~doc:"Write a JSONL event log (one record per trial, with \
                   best-so-far cost — enough to reconstruct the search \
                   curve).")
  in
  Cmd.v (Cmd.info "tune" ~doc:"Tune an operator's schedule.")
    Term.(const run $ spec_arg $ method_ $ budget $ seed $ log $ log_jsonl
          $ no_cache_term $ store_dir_term $ no_store_term $ jobs_term)

(* alcop perf: profile the *host* runtime — the compiler's own wall-clock
   across worker domains — while it tunes an operator, then print the
   Amdahl/speedup-loss report (doc/hostprof.md). The profiling window
   opens before the pool spawns and closes after it joins, so every
   worker's full lifetime is on its track; collection stays outside the
   capture/replay path, so any --log-jsonl telemetry written here is
   byte-identical to an unprofiled run (CI diffs it). *)
let perf_cmd =
  let run spec method_ budget seed jobs no_cache trace_out json_out log_jsonl =
    (match log_jsonl with
     | Some path -> install_file_sink Alcop_obs.Sinks.jsonl_file path
     | None -> ());
    (* A fresh session (not the registry one) and no post-pass IR
       validation: perf measures the tuning hot path as the tuners run
       it. *)
    let session =
      if no_cache then Session.create ~hw ~cache:false ()
      else Session.create ~hw ()
    in
    let evaluate = Variants.evaluator ~hw ~session Variants.alcop spec in
    let space = Variants.space Variants.alcop spec in
    let budget = if budget <= 0 then Array.length space else budget in
    Alcop_obs.Hostprof.start ();
    let result =
      with_jobs jobs @@ fun pool ->
      Alcop_tune.Tuner.run ?pool ~hw ~spec ~space ~evaluate ~budget ~seed
        method_
    in
    let profile = Alcop_obs.Hostprof.stop () in
    Printf.printf "space: %d schedules; method: %s; budget: %d\n"
      (Array.length space)
      (Alcop_tune.Tuner.method_to_string method_)
      budget;
    (match Alcop_tune.Tuner.best result with
     | Some best -> Printf.printf "best: %.0f cycles\n\n" best
     | None -> Printf.printf "no trial compiled\n\n");
    print_string (Alcop_obs.Hostprof.report profile);
    Session.publish_entries_gauge session;
    if not no_cache then Printf.printf "%s\n" (Session.summary session);
    (match trace_out with
     | Some path ->
       Alcop_obs.Hostprof.write_chrome_trace path profile;
       Printf.printf
         "host Chrome trace (one track per domain) written to %s\n" path
     | None -> ());
    (match json_out with
     | Some path ->
       let oc = open_out path in
       output_string oc
         (Alcop_obs.Json.to_string (Alcop_obs.Hostprof.json_of_profile profile));
       output_char oc '\n';
       close_out oc;
       Printf.printf "host profile JSON written to %s\n" path
     | None -> ());
    (match log_jsonl with
     | Some path ->
       Alcop_obs.Obs.reset ();
       Printf.printf "JSONL event log written to %s\n" path
     | None -> ());
    (* the accounting contract, enforced on every run *)
    match Alcop_obs.Hostprof.check profile with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "hostprof telescoping violation: %s\n" msg;
      exit 3
  in
  let method_ =
    Arg.(value & opt method_conv Alcop_tune.Tuner.Grid
         & info [ "m"; "method" ] ~doc:"grid | xgb | analytical | xgb+.")
  in
  let budget =
    Arg.(value & opt int 0
         & info [ "budget" ]
             ~doc:"Measurement budget (0 = the whole schedule space).")
  in
  let seed = Arg.(value & opt int 2023 & info [ "seed" ] ~doc:"Random seed.") in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace of *host* time: one track per \
                   domain (coordinator + workers), task spans with queue \
                   latency, idle/lock-wait intervals.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:"Write the machine-readable host profile (schema \
                   alcop-hostprof-v1).")
  in
  let log_jsonl =
    Arg.(value & opt (some string) None
         & info [ "log-jsonl" ] ~docv:"FILE"
             ~doc:"Also write the ordinary (simulated-work) JSONL telemetry \
                   — byte-identical to an unprofiled run at any -j.")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Profile the compiler's own host runtime while tuning an \
             operator: per-domain busy/queue/lock/gc/idle decomposition \
             (telescoping to 100% of each worker's wall), Amdahl expected \
             speedup, top contended locks, allocation-heaviest passes.")
    Term.(const run $ spec_arg $ method_ $ budget $ seed $ jobs_term
          $ no_cache_term $ trace_out $ json_out $ log_jsonl)

let model_cmd =
  let run spec params =
    match Alcop_perfmodel.Model.predict hw spec params with
    | Error f ->
      Format.printf "schedule cannot launch: %a@." Alcop_gpusim.Occupancy.pp_failure f;
      exit 1
    | Ok m ->
      let open Alcop_perfmodel.Model in
      Printf.printf "Table I analytical model for %s\n"
        (Alcop_perfmodel.Params.to_string params);
      Printf.printf "  T_kernel       = %10.0f cycles (T_threadblk x %d batches)\n"
        m.cycles m.n_batches;
      Printf.printf "  T_threadblk    = %10.0f\n" m.t_threadblk;
      Printf.printf "    T_init       = %10.0f  (first smem + reg chunk)\n" m.t_init;
      Printf.printf "    T_main_loop  = %10.0f  (%s-bound)\n" m.t_main_loop
        (if m.smem_bound then "loading" else "compute");
      Printf.printf "    T_epilogue   = %10.0f\n" m.t_epilogue;
      Printf.printf "  T_smem_load    = %10.0f  per K iteration\n" m.t_smem_load;
      Printf.printf "  T_smem_use     = %10.0f  (inner pipeline)\n" m.t_smem_use;
      Printf.printf "  T_reg_load     = %10.0f\n" m.t_reg_load;
      Printf.printf "  T_compute      = %10.0f  per register loop\n" m.t_compute;
      Printf.printf "  N_tb_per_SM    = %10d\n" m.tbs_per_sm;
      (match
         Alcop_perfmodel.Bottleneck.predict_cycles hw spec params,
         Session.evaluate (Session.for_hw hw) params spec
       with
       | Some b, Some sim ->
         Printf.printf "  bottleneck model: %.0f cycles; simulator: %.0f cycles\n"
           b sim
       | _ -> ())
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:"Print the Table I analytical prediction, term by term.")
    Term.(const run $ spec_arg $ params_term)

(* alcop explain: the per-buffer pipelinability report (which of the
   paper's three legality rules passed or failed, and why), the per-phase
   compile timings, and the simulator's busy/occupancy gauges. *)
let explain_cmd =
  let run spec params dump_ir =
    install_dump_ir dump_ir;
    let sink, events = Alcop_obs.Obs.memory_sink () in
    Alcop_obs.Obs.add_sink sink;
    (* A fresh process: the first session compile is always a cold miss, so
       the per-pass spans below are real compile timings, not cache hits. *)
    let result = Session.compile (session_of ~no_cache:false ()) params spec in
    let captured = events () in
    let gauges = Alcop_obs.Obs.gauges () in
    Alcop_obs.Obs.reset ();
    Printf.printf "operator:  %s\n" (Format.asprintf "%a" Alcop_sched.Op_spec.pp spec);
    Printf.printf "schedule:  %s\n\n" (Alcop_perfmodel.Params.to_string params);
    let verdicts =
      match result with
      | Ok c ->
        Some
          (Alcop_pipeline.Analysis.verdicts ~hw
             ~hints:c.Compiler.lowered.Alcop_sched.Lower.hints
             c.Compiler.lowered.Alcop_sched.Lower.kernel)
      | Error (Compiler.Legality_rejected { verdicts; _ }) -> Some verdicts
      | Error _ -> None
    in
    print_endline "== pipelinability (paper Sec. II-A legality rules) ==";
    (match verdicts with
     | Some vs -> Format.printf "%a@." Alcop_pipeline.Analysis.pp_verdicts vs
     | None ->
       print_endline
         "(not reached: compilation failed before the pipelining pass)");
    print_endline "";
    print_endline "== compile phases (wall clock) ==";
    List.iter
      (fun (ev : Alcop_obs.Obs.event) ->
        match ev with
        | Alcop_obs.Obs.Span_end { name; dur; depth; _ } when depth > 0 ->
          Printf.printf "  %-20s %10.3f ms\n" name (1e3 *. dur)
        | _ -> ())
      captured;
    if gauges <> [] then begin
      print_endline "";
      print_endline "== simulator gauges ==";
      List.iter
        (fun (name, v) -> Printf.printf "  %-24s %10.4g\n" name v)
        gauges
    end;
    print_endline "";
    match result with
    | Ok c ->
      Printf.printf "compile OK: %.0f cycles (%.1f us)\n"
        c.Compiler.latency_cycles
        (Alcop_hw.Hw_config.cycles_to_us hw c.Compiler.latency_cycles)
    | Error e ->
      Printf.printf "compile FAILED (%s): %s\n" (Compiler.error_kind e)
        (Compiler.error_to_string e);
      exit 1
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain one schedule: the per-buffer legality verdicts of the \
             pipelining pass, the per-phase compile timings and the \
             simulator gauges.")
    Term.(const run $ spec_arg $ params_term $ dump_ir_term)

(* alcop explain-pipeline: the pipeline observatory (doc/pipeview.md) —
   per-stage buffer occupancy timelines, per-wait prefetch slack, a
   five-term partition of the critical threadblock's cycles, and (with
   --compare) an exact integer telescoping of the latency delta between
   two stage configurations of the same tiling. *)
let stage_pair_conv =
  let parse s =
    let bad () =
      Error (`Msg (Printf.sprintf "bad stage pair %s (want SMEMxREG, e.g. 3x2)" s))
    in
    match String.split_on_char 'x' s with
    | [ a; b ] ->
      (match (int_of_string_opt a, int_of_string_opt b) with
       | Some smem, Some reg when smem >= 1 && reg >= 1 -> Ok (smem, reg)
       | _ -> bad ())
    | _ -> bad ()
  in
  Arg.conv (parse, fun fmt (s, r) -> Format.fprintf fmt "%dx%d" s r)

let explain_pipeline_cmd =
  let with_stages (params : Alcop_perfmodel.Params.t) (smem_stages, reg_stages) =
    Alcop_perfmodel.Params.make ~swizzle:params.Alcop_perfmodel.Params.swizzle
      ~inner_fuse:params.Alcop_perfmodel.Params.inner_fuse
      ~tiling:params.Alcop_perfmodel.Params.tiling ~smem_stages ~reg_stages ()
  in
  let view session spec params =
    with_compiled ~session params spec (fun c ->
        match
          Alcop_gpusim.Pipeview.run ~op:spec.Alcop_sched.Op_spec.name
            ~schedule:(Alcop_perfmodel.Params.to_string params)
            c.Compiler.timing_request
        with
        | Ok v -> v
        | Error f ->
          Format.eprintf "cannot analyze: %a@."
            Alcop_gpusim.Occupancy.pp_failure f;
          exit 1)
  in
  (* HTML building blocks (shared report scaffold, inline SVG only) *)
  let occupancy_section (v : Alcop_gpusim.Pipeview.t) =
    let open Alcop_gpusim.Pipeview in
    let rows =
      List.concat_map
        (fun g ->
          Array.to_list g.gv_slots
          |> List.map (fun slot ->
                 ( Printf.sprintf "%s stage %d" g.gv_id slot.oc_stage,
                   Array.to_list slot.oc_intervals )))
        v.pv_groups
    in
    Alcop_obs.Report.section ~title:"Stage occupancy"
      ~intro:
        "Fill-to-retire intervals of every pipeline stage slot across the \
         critical threadblock's wave, on a shared cycle axis. Gaps are \
         cycles the stage buffer sat empty."
      [ Alcop_obs.Report.interval_rows ~x_label:"cycles"
          ~total:v.pv_wave_cycles ~rows () ]
  in
  let slack_section (v : Alcop_gpusim.Pipeview.t) =
    let open Alcop_gpusim.Pipeview in
    let slacks = List.map (fun s -> (s.sl_group, s.sl_slack)) v.pv_slacks in
    if slacks = [] then ""
    else begin
      let values = List.map snd slacks in
      let lo = List.fold_left Float.min 0.0 values in
      let hi = Float.max 1.0 (List.fold_left Float.max 0.0 values) in
      let nbins = 8 in
      let width = (hi -. lo) /. float_of_int nbins in
      let bin x =
        min (nbins - 1) (max 0 (int_of_float ((x -. lo) /. width)))
      in
      let categories =
        List.init nbins (fun i ->
            Printf.sprintf "%.0f..%.0f"
              (lo +. (float_of_int i *. width))
              (lo +. (float_of_int (i + 1) *. width)))
      in
      let groups =
        List.sort_uniq compare (List.map fst slacks)
      in
      let series =
        List.map
          (fun g ->
            let counts = Array.make nbins 0.0 in
            List.iter
              (fun (g', x) ->
                if String.equal g g' then
                  counts.(bin x) <- counts.(bin x) +. 1.0)
              slacks;
            (g, Array.to_list counts))
          groups
      in
      let table_rows =
        List.map
          (fun g ->
            [ g.gv_id; string_of_int g.gv_stages;
              (if g.gv_synchronized then "scope" else "soft");
              Printf.sprintf "%.1f" g.gv_mean_slack;
              Printf.sprintf "%.1f" g.gv_min_slack;
              Printf.sprintf "%.0f" g.gv_exposed_cycles;
              Printf.sprintf "%.2f" g.gv_duty ])
          v.pv_groups
      in
      Alcop_obs.Report.section ~title:"Prefetch slack"
        ~intro:
          "Per-wait slack = wait-start minus batch-land cycle; negative \
           slack is exposed copy latency the pipeline failed to hide."
        [ Alcop_obs.Report.grouped_bars ~y_label:"waits"
            ~categories ~series ();
          Alcop_obs.Report.table
            ~header:[ "group"; "stages"; "protocol"; "mean slack";
                      "min slack"; "exposed cycles"; "duty" ]
            ~rows:table_rows ]
    end
  in
  let partition_section (v : Alcop_gpusim.Pipeview.t) =
    let open Alcop_gpusim.Pipeview in
    Alcop_obs.Report.section ~title:"Cycle partition"
      ~intro:
        "The five terms partition the critical threadblock's wave cycles \
         exactly; their schedule-to-schedule deltas telescope the latency \
         delta."
      [ Alcop_obs.Report.table ~header:[ "term"; "cycles"; "share" ]
          ~rows:
            (List.map
               (fun (name, c) ->
                 [ name; Printf.sprintf "%.0f" c;
                   Printf.sprintf "%.1f%%"
                     (100.0 *. c /. Float.max 1.0 v.pv_wave_cycles) ])
               v.pv_terms) ]
  in
  let compare_section label_a label_b a b =
    let cmp = Alcop_gpusim.Pipeview.compare_views a b in
    let open Alcop_gpusim.Pipeview in
    Alcop_obs.Report.section ~title:"Latency delta, telescoped"
      ~intro:
        (Printf.sprintf
           "Wave-cycle delta %s → %s, split across the five partition \
            terms; the term deltas sum to the total exactly (integer \
            cycles)."
           (Alcop_obs.Report.html_escape label_a)
           (Alcop_obs.Report.html_escape label_b))
      [ Alcop_obs.Report.table
          ~header:[ "term"; label_a; label_b; "delta" ]
          ~rows:
            (List.map
               (fun t ->
                 [ t.dt_name; string_of_int t.dt_a; string_of_int t.dt_b;
                   Printf.sprintf "%+d" t.dt_delta ])
               cmp.cmp_terms
            @ [ [ "total"; string_of_int cmp.cmp_total_a;
                  string_of_int cmp.cmp_total_b;
                  Printf.sprintf "%+d" cmp.cmp_total_delta ] ]);
        Alcop_obs.Report.diverging_bars ~pos_label:"slower in B"
          ~neg_label:"faster in B"
          ~rows:
            (List.map (fun t -> (t.dt_name, float_of_int t.dt_delta))
               cmp.cmp_terms)
          () ]
  in
  let write_html path sections =
    let doc =
      Alcop_obs.Report.page ~title:"ALCOP pipeline observatory"
        ~subtitle:"per-stage occupancy, prefetch slack, sync attribution"
        sections
    in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc doc);
    Printf.printf "HTML report written to %s\n" path
  in
  let run spec params stages compare html jsonl_out =
    let session = session_of ~no_cache:false () in
    match compare with
    | Some (pair_a, pair_b) ->
      let params_a = with_stages params pair_a
      and params_b = with_stages params pair_b in
      let label_a = Printf.sprintf "%dx%d" (fst pair_a) (snd pair_a)
      and label_b = Printf.sprintf "%dx%d" (fst pair_b) (snd pair_b) in
      let a = view session spec params_a in
      let b = view session spec params_b in
      print_string
        (Alcop_gpusim.Pipeview.compare_report ~label_a ~label_b a b);
      (match jsonl_out with
       | Some path ->
         Alcop_gpusim.Pipeview.write_jsonl path b;
         Printf.printf "JSONL event log (schedule %s) written to %s\n"
           label_b path
       | None -> ());
      (match html with
       | Some path ->
         write_html path
           [ compare_section label_a label_b a b;
             partition_section a; occupancy_section a; slack_section a;
             partition_section b; occupancy_section b; slack_section b ]
       | None -> ())
    | None ->
      let params =
        match stages with None -> params | Some pair -> with_stages params pair
      in
      let v = view session spec params in
      print_string (Alcop_gpusim.Pipeview.report v);
      (match Alcop_perfmodel.Model.predict hw spec params with
       | Ok m ->
         let predicted =
           Alcop_perfmodel.Model.predicted_smem_slack m
             ~smem_stages:params.Alcop_perfmodel.Params.smem_stages
         in
         Printf.printf
           "predicted smem slack (Table I): %+.0f cycles per iteration (%s)\n"
           predicted
           (if predicted >= 0.0 then "latency hidden" else "exposed")
       | Error _ -> ());
      (match jsonl_out with
       | Some path ->
         Alcop_gpusim.Pipeview.write_jsonl path v;
         Printf.printf "JSONL event log written to %s\n" path
       | None -> ());
      (match html with
       | Some path ->
         write_html path
           [ partition_section v; occupancy_section v; slack_section v ]
       | None -> ())
  in
  let stages =
    Arg.(value & opt (some stage_pair_conv) None
         & info [ "stages" ] ~docv:"SxR"
             ~doc:"Shorthand for --smem-stages S --reg-stages R.")
  in
  let compare =
    Arg.(value & opt (some (t2 ~sep:',' stage_pair_conv stage_pair_conv)) None
         & info [ "compare" ] ~docv:"SxR,SxR"
             ~doc:"Analyze two stage configurations of the same tiling \
                   (e.g. 1x1,3x2) and telescope the latency delta into \
                   slack/occupancy/sync terms, in exact integer cycles.")
  in
  let html =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE"
             ~doc:"Write a self-contained HTML report: stage-occupancy \
                   waterfall, prefetch-slack histogram, cycle partition \
                   (and the telescoped delta under --compare).")
  in
  let jsonl_out =
    Arg.(value & opt (some string) None
         & info [ "jsonl-out" ] ~docv:"FILE"
             ~doc:"Write the observatory events (feature record, per-wait \
                   slack points, occupancy spans) as a JSONL log.")
  in
  Cmd.v
    (Cmd.info "explain-pipeline"
       ~doc:"Pipeline observatory: per-stage buffer occupancy, prefetch \
             slack and sync-wait attribution for one schedule, or an exact \
             telescoped latency delta between two (doc/pipeview.md).")
    Term.(const run $ spec_arg $ params_term $ stages $ compare $ html
          $ jsonl_out)

let verify_cmd =
  let run spec params =
    if Alcop_sched.Op_spec.flops spec > 200_000_000 then begin
      Printf.eprintf
        "operator too large for the functional interpreter; pick a small shape\n";
      exit 1
    end;
    with_compiled params spec (fun c ->
        match Compiler.verify c with
        | Ok diff -> Printf.printf "OK: max |err| = %g\n" diff
        | Error diff ->
          Printf.printf "MISMATCH: max |err| = %g\n" diff;
          exit 1)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Execute the pipelined kernel functionally and compare against \
             the host reference.")
    Term.(const run $ spec_arg $ params_term)

(* alcop trace summary|diff: offline analytics over JSONL event logs
   (written by --jsonl-out / --log-jsonl or any Sinks.jsonl consumer). *)
let load_trace path =
  match Alcop_obs.Trace_reader.load path with
  | Ok t ->
    if t.Alcop_obs.Trace_reader.tr_skipped > 0 then
      Printf.eprintf "warning: %s: skipped %d malformed line%s\n" path
        t.Alcop_obs.Trace_reader.tr_skipped
        (if t.Alcop_obs.Trace_reader.tr_skipped = 1 then "" else "s");
    t
  | Error msg ->
    Printf.eprintf "cannot read trace %s: %s\n" path msg;
    exit 1

let trace_file_arg ~p ~docv =
  Arg.(required & pos p (some file) None
       & info [] ~docv ~doc:"JSONL event log.")

let trace_summary_cmd =
  let run path =
    List.iter print_endline (Alcop_obs.Analytics.summary_lines (load_trace path))
  in
  Cmd.v
    (Cmd.info "summary"
       ~doc:"Summarize a JSONL event log: span table with duration \
             percentiles, critical path, counters, gauges, histograms.")
    Term.(const run $ trace_file_arg ~p:0 ~docv:"TRACE")

let trace_diff_cmd =
  let run old_path new_path =
    let old_trace = load_trace old_path and new_trace = load_trace new_path in
    List.iter print_endline
      (Alcop_obs.Analytics.diff_lines ~old_trace ~new_trace)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff two JSONL event logs: per-span-name duration deltas and, \
             for profiler traces, the stall-class cycle deltas whose sum \
             accounts exactly for the total cycle delta.")
    Term.(const run $ trace_file_arg ~p:0 ~docv:"OLD"
          $ trace_file_arg ~p:1 ~docv:"NEW")

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Offline analytics over JSONL event logs (summary, diff).")
    [ trace_summary_cmd; trace_diff_cmd ]

let report_cmd =
  let run out results_dir bench_json history_dir jobs =
    with_jobs jobs (fun pool ->
        Exp_report.write ~hw ?pool ~results_dir ~bench_json ~history_dir out);
    Printf.printf "HTML report written to %s\n" out
  in
  let out =
    Arg.(value & opt string "report.html"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output HTML file.")
  in
  let results_dir =
    Arg.(value & opt string "results"
         & info [ "results-dir" ] ~docv:"DIR"
             ~doc:"Directory with the figure CSVs written by `bench csv`; \
                   figures are recomputed when absent.")
  in
  let bench_json =
    Arg.(value & opt string "BENCH_gpusim.json"
         & info [ "bench-json" ] ~docv:"FILE"
             ~doc:"Selfbench trajectory file (schema alcop-selfbench-v2; \
                   v1 files are still read).")
  in
  let history_dir =
    Arg.(value & opt string Alcop_obs.Benchdb.default_history_dir
         & info [ "history-dir" ] ~docv:"DIR"
             ~doc:"Benchmark history directory (written by `bench record`); \
                   feeds the per-machine trend charts.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Write the self-contained HTML experiment report: figures 10, \
             12 and 13, the compiler selfbench, benchmark-history trend \
             charts, and a stall-class diff explaining the pipelining \
             speedup. Single file, inline SVG, no scripts.")
    Term.(const run $ out $ results_dir $ bench_json $ history_dir $ jobs_term)

(* alcop cache: inspect and garbage-collect the persistent artifact store.
   Both subcommands open the store directly (no session involved), so the
   numbers describe what is on disk, not this process's traffic. *)
let cache_cmd =
  let print_usage st =
    let entries, bytes = Store.usage st in
    Printf.printf "store:    %s%s\n" (Store.root st)
      (if Store.enabled st then "" else "  (disabled: not writable)");
    Printf.printf "entries:  %d\n" entries;
    Printf.printf "size:     %.1f KiB (gc cap %.1f MiB)\n"
      (float_of_int bytes /. 1024.0)
      (float_of_int (Store.max_bytes st) /. 1024.0 /. 1024.0)
  in
  let stats_cmd =
    let run store_dir =
      let st = Store.create ?root:store_dir () in
      print_usage st
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Print the store's location, entry count and size.")
      Term.(const run $ store_dir_term)
  in
  let gc_cmd =
    let run store_dir max_mib =
      let st = Store.create ?root:store_dir () in
      let max_bytes =
        Option.map (fun m -> m * 1024 * 1024) max_mib
      in
      let removed = Store.gc st ?max_bytes () in
      Printf.printf "evicted:  %d entries\n" removed;
      print_usage st
    in
    let max_mib =
      Arg.(value & opt (some int) None
           & info [ "max-mib" ] ~docv:"MIB"
               ~doc:"Evict least-recently-used entries until the store fits \
                     under MIB mebibytes (default: the built-in cap).")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Evict least-recently-used entries until the store fits under \
               its size cap.")
      Term.(const run $ store_dir_term $ max_mib)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect or garbage-collect the persistent artifact store.")
    [ stats_cmd; gc_cmd ]

let () =
  (* ALCOP_FIXED_TS=1: stamp every event with t=0. With a stateless clock,
     parallel runs replay worker telemetry into byte-identical streams, so
     CI can byte-diff -j 1 against -j N logs (doc/parallelism.md). *)
  (match Sys.getenv_opt "ALCOP_FIXED_TS" with
   | Some ("" | "0") | None -> ()
   | Some _ -> Alcop_obs.Obs.set_clock (fun () -> 0.0));
  let info =
    Cmd.info "alcop" ~version:"1.0"
      ~doc:"ALCOP: automatic load-compute pipelining on a simulated AI-GPU."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ ops_cmd; show_cmd; time_cmd; profile_cmd; perf_cmd; model_cmd;
            tune_cmd; explain_cmd; explain_pipeline_cmd; verify_cmd; trace_cmd;
            report_cmd; cache_cmd ]))
